"""Dynamic operation/address traces emitted by instrumented workloads.

A trace is a list of blocks; each block summarises a region of dynamic
execution (typically one loop nest) with operation counts by class and the
actual memory addresses touched. Core models consume blocks independently:
compute bounds come from the counts, memory bounds from simulating the
addresses through a cache hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

import numpy as np

from repro.common.errors import ConfigError


@dataclass
class TraceBlock:
    """One region of dynamic execution.

    Attributes:
        name: label for reports.
        int_ops: simple integer ALU operations.
        mul_ops: integer multiplies.
        fp_ops: floating-point operations.
        branches: (mostly-biased) branch instructions.
        branch_miss_rate: fraction of branches mispredicted — near zero
            for counted loops, noticeable for data-dependent control.
        loads / stores: addresses touched, in program order.
        parallel: True when a multicore may split this block across cores
            (the workload's thread-parallel region).
        dependent_loads: loads on the critical path (pointer chasing /
            serialized post-processing): their latency cannot overlap.
    """

    name: str
    int_ops: int = 0
    mul_ops: int = 0
    fp_ops: int = 0
    branches: int = 0
    branch_miss_rate: float = 0.0
    loads: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    stores: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    parallel: bool = True
    dependent_loads: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.branch_miss_rate <= 1.0:
            raise ConfigError("branch_miss_rate must be in [0, 1]")
        self.loads = np.asarray(self.loads, dtype=np.int64)
        self.stores = np.asarray(self.stores, dtype=np.int64)

    @property
    def total_ops(self) -> int:
        """All micro-operations in the block, including memory ops."""
        return (
            self.int_ops
            + self.mul_ops
            + self.fp_ops
            + self.branches
            + len(self.loads)
            + len(self.stores)
        )

    def split(self, shards: int) -> List["TraceBlock"]:
        """Split a parallel block into per-core shards.

        Memory addresses are split into contiguous chunks (the Phoenix
        runtime's chunked work distribution — each thread owns a disjoint
        slice of the input, avoiding false line sharing); op counts divide
        evenly.
        """
        if shards <= 0:
            raise ConfigError("shards must be positive")
        if shards == 1 or not self.parallel:
            return [self]
        out = []
        n_loads, n_stores = len(self.loads), len(self.stores)
        for s in range(shards):
            lo_l, hi_l = s * n_loads // shards, (s + 1) * n_loads // shards
            lo_s, hi_s = s * n_stores // shards, (s + 1) * n_stores // shards
            out.append(
                TraceBlock(
                    name=f"{self.name}[{s}/{shards}]",
                    int_ops=self.int_ops // shards,
                    mul_ops=self.mul_ops // shards,
                    fp_ops=self.fp_ops // shards,
                    branches=self.branches // shards,
                    branch_miss_rate=self.branch_miss_rate,
                    loads=self.loads[lo_l:hi_l],
                    stores=self.stores[lo_s:hi_s],
                    parallel=True,
                    dependent_loads=self.dependent_loads // shards,
                )
            )
        return out


@dataclass
class Trace:
    """A whole program's dynamic trace.

    ``repeat`` marks a trace that represents one iteration of an
    outer loop executed ``repeat`` times with identical behaviour (e.g.
    kmeans sweeps): cores simulate the blocks once and scale the cycle
    count, which keeps cache simulation tractable without changing the
    steady-state behaviour being measured.
    """

    name: str
    blocks: List[TraceBlock] = field(default_factory=list)
    repeat: int = 1

    def add(self, block: TraceBlock) -> None:
        self.blocks.append(block)

    def extend(self, blocks: Iterable[TraceBlock]) -> None:
        self.blocks.extend(blocks)

    @property
    def total_ops(self) -> int:
        return sum(b.total_ops for b in self.blocks)

    @property
    def total_memory_bytes(self) -> int:
        """Touched bytes assuming 4-byte accesses (reporting only)."""
        return 4 * sum(len(b.loads) + len(b.stores) for b in self.blocks)
