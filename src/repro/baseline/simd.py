"""SVE-like SIMD engine model (Section VI-E, Figure 12).

The paper's SIMD study runs an ARM core (configured to match the RISC-V
out-of-order baseline) with four SIMD ALUs at 128/256/512-bit vector
widths, on hand-vectorised SVE code. We model the same design point: the
OoO core of ``ooo.py`` executing *SIMD traces* — workload traces whose
data-parallel blocks are re-expressed as W-lane vector operations.

Workloads provide a ``simd_trace(lanes)`` generator; this module supplies
the core configuration and the lane math.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.baseline.ooo import OoOConfig, OoOCore, RunResult
from repro.baseline.trace import Trace
from repro.common.errors import ConfigError
from repro.memory.hierarchy import CacheHierarchy


@dataclass(frozen=True)
class SIMDConfig:
    """SIMD datapath parameters.

    Attributes:
        vector_bits: SVE register width (128/256/512 in Figure 12).
        element_bits: element width of the workloads (32).
        simd_units: vector ALUs (4, Section VI-E).
    """

    vector_bits: int = 512
    element_bits: int = 32
    simd_units: int = 4

    def __post_init__(self) -> None:
        if self.vector_bits % self.element_bits != 0:
            raise ConfigError("vector width must be a multiple of element width")

    @property
    def lanes(self) -> int:
        """Elements processed per SIMD operation."""
        return self.vector_bits // self.element_bits


class SIMDCore:
    """An OoO core with an SVE-like SIMD datapath.

    The scalar pipeline parameters match the baseline; vector blocks in
    the trace use the ``simd_units`` for their (already lane-compressed)
    operation counts. Horizontal reductions pay a log2(lanes) tree per
    use — the classic cross-lane cost CAPE's redsum avoids.
    """

    def __init__(
        self,
        config: SIMDConfig = SIMDConfig(),
        core_config: Optional[OoOConfig] = None,
        hierarchy: Optional[CacheHierarchy] = None,
    ) -> None:
        self.config = config
        base = core_config if core_config is not None else OoOConfig()
        # Wider vector loads cover more bytes per load-queue entry, so
        # the same LQ sustains more outstanding cache lines: streaming
        # memory-level parallelism grows (mildly) with register width.
        mlp = base.max_mlp * (1 + 0.2 * math.log2(config.lanes))
        # SIMD ops issue to the vector ALUs: narrow the per-class unit
        # counts used by the interval model accordingly.
        self._core = OoOCore(
            OoOConfig(
                issue_width=base.issue_width,
                rob_entries=base.rob_entries,
                load_queue=base.load_queue,
                store_queue=base.store_queue,
                int_units=config.simd_units,
                mul_units=config.simd_units,
                fp_units=config.simd_units,
                mem_units=base.mem_units,
                branch_units=base.branch_units,
                mul_latency=base.mul_latency,
                fp_latency=base.fp_latency,
                branch_penalty=base.branch_penalty,
                frequency_hz=base.frequency_hz,
                max_mlp=mlp,
            ),
            hierarchy,
        )

    @property
    def lanes(self) -> int:
        return self.config.lanes

    @property
    def hierarchy(self) -> CacheHierarchy:
        return self._core.hierarchy

    def run(self, trace: Trace) -> RunResult:
        """Run a lane-compressed SIMD trace."""
        return self._core.run(trace)
