"""Baseline processor timing models (Table III, Sections VI-C/VI-E).

The paper compares CAPE against gem5 models of (a) an 8-issue out-of-order
core with three cache levels, (b) 2- and 3-core multicore versions of the
same tile, and (c) an ARM core with SVE SIMD units. We reproduce those
comparison points with interval-analysis timing models fed by dynamic
operation/address traces emitted by the instrumented workloads:

* compute bounds from issue width and per-class functional units,
* memory bounds from a real cache/HBM simulation with a bounded amount of
  memory-level parallelism (ROB/LQ limited for the OoO core, ~none for
  the in-order core),
* branch-misprediction stalls from per-block misprediction rates.
"""

from repro.baseline.trace import Trace, TraceBlock
from repro.baseline.inorder import InOrderConfig, InOrderCore
from repro.baseline.multicore import Multicore
from repro.baseline.ooo import OoOConfig, OoOCore, RunResult
from repro.baseline.simd import SIMDConfig, SIMDCore

__all__ = [
    "InOrderConfig",
    "InOrderCore",
    "Multicore",
    "OoOConfig",
    "OoOCore",
    "RunResult",
    "SIMDConfig",
    "SIMDCore",
    "Trace",
    "TraceBlock",
]
