"""In-order core timing model (CAPE's control processor, Table III).

A dual-issue five-stage pipeline (gem5 MinorCPU-like): no memory-level
parallelism to speak of — every load miss stalls the pipe — and a small
load/store queue. Used both for CAPE's scalar code and as the scalar
reference of the SIMD study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baseline.ooo import RunResult
from repro.baseline.trace import Trace, TraceBlock
from repro.common.errors import ConfigError
from repro.memory.hierarchy import AccessType, CacheHierarchy, HierarchyConfig


@dataclass(frozen=True)
class InOrderConfig:
    """In-order core parameters (defaults: CAPE's control processor)."""

    issue_width: int = 2
    lsq_entries: int = 5
    int_units: int = 4
    mul_units: int = 1
    fp_units: int = 1
    mem_units: int = 1
    branch_units: int = 1
    mul_latency: int = 3
    fp_latency: int = 4
    branch_penalty: int = 8
    frequency_hz: float = 2.7e9
    #: Small overlap from the LSQ's few entries.
    max_mlp: float = 2.0

    def __post_init__(self) -> None:
        if self.issue_width <= 0:
            raise ConfigError("issue width must be positive")


def control_processor_hierarchy() -> CacheHierarchy:
    """The CP's cache stack: L1s + 1 MB L2 with 512 B lines, no L3."""
    return CacheHierarchy(
        HierarchyConfig(l3_size=0, l2_line=512, frequency_hz=2.7e9)
    )


class InOrderCore:
    """Dual-issue in-order core bound to a cache hierarchy."""

    def __init__(
        self,
        config: InOrderConfig = InOrderConfig(),
        hierarchy: Optional[CacheHierarchy] = None,
    ) -> None:
        self.config = config
        self.hierarchy = (
            hierarchy if hierarchy is not None else control_processor_hierarchy()
        )

    def run(self, trace: Trace) -> RunResult:
        total = 0.0
        for block in trace.blocks:
            total += self.block_cycles(block)
        total *= trace.repeat
        return RunResult(
            name=trace.name,
            cycles=total,
            seconds=total / self.config.frequency_hz,
            instructions=trace.total_ops * trace.repeat,
            frequency_hz=self.config.frequency_hz,
        )

    def block_cycles(self, block: TraceBlock) -> float:
        cfg = self.config
        issue_bound = block.total_ops / cfg.issue_width
        unit_bounds = (
            block.int_ops / cfg.int_units,
            block.mul_ops * cfg.mul_latency / cfg.mul_units,
            block.fp_ops * cfg.fp_latency / cfg.fp_units,
            (len(block.loads) + len(block.stores)) / cfg.mem_units,
            block.branches / cfg.branch_units,
        )
        mem_stall = self._memory_cycles(block)
        branch_stall = block.branches * block.branch_miss_rate * cfg.branch_penalty
        # In-order: memory stalls add to (rather than hide behind) the
        # compute bound, because the pipeline blocks at the first use.
        return max(issue_bound, *unit_bounds) + mem_stall + branch_stall

    def _memory_cycles(self, block: TraceBlock) -> float:
        hierarchy = self.hierarchy
        l1_hit = hierarchy.config.l1_latency
        stall = 0.0
        for addr in block.loads:
            lat = hierarchy.access(int(addr), AccessType.LOAD)
            stall += max(0, lat - l1_hit)
        for addr in block.stores:
            lat = hierarchy.access(int(addr), AccessType.STORE)
            stall += max(0, lat - l1_hit) / self.config.max_mlp
        return stall / self.config.max_mlp
