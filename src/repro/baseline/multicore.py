"""Multicore baseline: N out-of-order tiles with a shared L3 (Table III).

Used for the 2-core and 3-core reference points of Figure 11. Parallel
trace blocks are split across cores (round-robin address sharding, the
Phoenix runtime's chunking); serial blocks run on core 0. Each parallel
region ends with a barrier whose cost grows with the core count.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baseline.ooo import OoOConfig, OoOCore, RunResult
from repro.baseline.trace import Trace
from repro.common.errors import ConfigError
from repro.memory.cache import Cache
from repro.memory.coherence import CoherentBus
from repro.memory.hbm import HBM
from repro.memory.hierarchy import CacheHierarchy, HierarchyConfig

#: Barrier/fork-join overhead per parallel block, in cycles per core.
BARRIER_CYCLES = 2000


class Multicore:
    """N-core shared-L3 baseline.

    Args:
        num_cores: tiles in the system (2 or 3 in the paper's Figure 11).
        config: per-core OoO parameters.
        hierarchy_config: per-core private cache geometry; the L3 is
            instantiated once and shared.
    """

    def __init__(
        self,
        num_cores: int,
        config: OoOConfig = OoOConfig(),
        hierarchy_config: HierarchyConfig = HierarchyConfig(),
    ) -> None:
        if num_cores <= 0:
            raise ConfigError("num_cores must be positive")
        self.num_cores = num_cores
        self.config = config
        hbm = HBM()
        shared_l3 = CacheHierarchy.make_shared_l3(hierarchy_config)
        self.hierarchies: List[CacheHierarchy] = [
            CacheHierarchy(hierarchy_config, hbm=hbm, shared_l3=shared_l3)
            for _ in range(num_cores)
        ]
        self.bus = CoherentBus(self.hierarchies)
        self.cores = [
            OoOCore(config, hierarchy) for hierarchy in self.hierarchies
        ]

    def run(self, trace: Trace) -> RunResult:
        """Run a trace with parallel blocks split across the cores.

        Each parallel block's time is the slowest shard (cores proceed
        concurrently); serial blocks execute on core 0 alone.
        """
        total = 0.0
        for block in trace.blocks:
            if block.parallel and self.num_cores > 1:
                shards = block.split(self.num_cores)
                shard_cycles = [
                    core.block_cycles(shard)
                    for core, shard in zip(self.cores, shards)
                ]
                total += max(shard_cycles) + BARRIER_CYCLES
            else:
                total += self.cores[0].block_cycles(block)
        total *= trace.repeat
        return RunResult(
            name=trace.name,
            cycles=total,
            seconds=total / self.config.frequency_hz,
            instructions=trace.total_ops * trace.repeat,
            frequency_hz=self.config.frequency_hz,
        )
