#!/usr/bin/env bash
# Repo health check: byte-compile the library, then run the tier-1 suite.
#
# Usage:  scripts/check.sh [extra pytest args]
set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall src =="
python -m compileall -q src

echo "== backend equivalence smoke =="
python - <<'EOF'
import numpy as np
from repro.assoc.emulator import AssociativeEmulator

rng = np.random.default_rng(0)
a = rng.integers(0, 1 << 32, size=16, dtype=np.int64)
b = rng.integers(0, 1 << 32, size=16, dtype=np.int64)
for mnemonic in ("vadd.vv", "vmul.vv", "vmslt.vv", "vredsum.vs"):
    runs = {}
    for backend in ("reference", "bitplane"):
        emu = AssociativeEmulator(num_cols=16, backend=backend)
        runs[backend] = emu.run(mnemonic, a, b, width=32)
    ref, fast = runs["reference"], runs["bitplane"]
    assert np.array_equal(np.asarray(ref.result), np.asarray(fast.result)), mnemonic
    assert ref.stats.counts == fast.stats.counts, mnemonic
print("reference == bitplane on", "vadd.vv vmul.vv vmslt.vv vredsum.vs")
EOF

echo "== tier-1 tests =="
python -m pytest -x -q "$@"
