#!/usr/bin/env bash
# Repo health check: byte-compile the library, then run the tier-1 suite.
#
# Usage:  scripts/check.sh [extra pytest args]
set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall src =="
python -m compileall -q src

echo "== backend equivalence smoke =="
python - <<'EOF'
import numpy as np
from repro.assoc.emulator import AssociativeEmulator

rng = np.random.default_rng(0)
a = rng.integers(0, 1 << 32, size=16, dtype=np.int64)
b = rng.integers(0, 1 << 32, size=16, dtype=np.int64)
for mnemonic in ("vadd.vv", "vmul.vv", "vmslt.vv", "vredsum.vs"):
    runs = {}
    for backend in ("reference", "bitplane"):
        emu = AssociativeEmulator(num_cols=16, backend=backend)
        runs[backend] = emu.run(mnemonic, a, b, width=32)
    ref, fast = runs["reference"], runs["bitplane"]
    assert np.array_equal(np.asarray(ref.result), np.asarray(fast.result)), mnemonic
    assert ref.stats.counts == fast.stats.counts, mnemonic
print("reference == bitplane on", "vadd.vv vmul.vv vmslt.vv vredsum.vs")
EOF

echo "== observability smoke =="
python - <<'EOF'
import json

from repro.api import CAPE32K, Device, Observer

obs = Observer()
device = Device(CAPE32K, backend="bitplane", observer=obs)
device.run(
    """
        li a0, 64
        vsetvli t0, a0, e32
        vmv.v.x v1, a0
        vmv.v.x v2, t0
        vadd.vv v3, v1, v2
        ecall
    """
)
cats = set(obs.tracer.categories())
assert {"interpreter", "microcode", "runtime"} <= cats, cats
for family in ("csb.microops", "vcu.instructions", "engine.cycles",
               "isa.instructions"):
    assert obs.metrics.total(family) > 0, family
payload = json.loads(obs.tracer.chrome_json())
assert payload["traceEvents"]
print(f"traced bitplane run: {len(obs.tracer)} events, "
      f"{len(obs.metrics)} metric series, chrome export valid")
EOF

echo "== perf smoke (plan cache) =="
python - <<'EOF'
from repro.eval.microprofile import run_fig9_kernels
from repro.obs import Observer

# Warm the shared plan cache, then time replay vs the per-dispatch FSM
# walk. The plan cache must be purely a host-speed win: identical
# checksum, identical csb.microops, and at least 1.5x faster warm.
run_fig9_kernels("bitplane")
on_s, on_ck = min(
    (run_fig9_kernels("bitplane") for _ in range(3)), key=lambda r: r[0]
)
off_s, off_ck = min(
    (run_fig9_kernels("bitplane", plan_cache=False) for _ in range(3)),
    key=lambda r: r[0],
)
assert on_ck == off_ck, (on_ck, off_ck)
uops = {}
for mode in (True, False):
    obs = Observer()
    run_fig9_kernels("bitplane", observer=obs, plan_cache=mode)
    uops[mode] = obs.metrics.total("csb.microops")
assert uops[True] == uops[False], uops
speedup = off_s / on_s
assert speedup >= 1.5, f"plan cache speedup {speedup:.2f}x < 1.5x"
print(f"plan cache: {on_s:.4f}s warm vs {off_s:.4f}s FSM walk "
      f"({speedup:.1f}x), checksum {on_ck} and "
      f"{uops[True]:.0f} microops identical")
EOF

echo "== perf smoke (superplan) =="
python - <<'EOF'
import sys

import numpy as np

sys.path.insert(0, "benchmarks")
from bench_fig9_microbenchmarks import run_superplan_compare

from repro.api import ExecConfig, JobSpec, plan_cache_snapshot, submit

# The BENCH_8 measurement, live: warm per-instruction plan replay vs
# whole-kernel superplan replay of the fig9 suite. The superplan must
# be purely a host-speed win — identical checksum, identical
# csb.microops — and at least 1.5x faster warm (the committed
# BENCH_8.json records >= 2x; the smoke bar leaves headroom for a
# loaded host).
payload = run_superplan_compare()
assert payload["checksum_identical"], payload
assert payload["microops_identical"], payload
speedup = payload["speedup_superplan"]
assert speedup >= 1.5, f"superplan speedup {speedup}x < 1.5x"

# The unified surface reaches the same machinery: one ExecConfig opts a
# submit() call into superplans, and the one stats surface shows the
# fused traces.
result = submit(
    JobSpec("sp-dot", "dot", {"x": np.arange(16), "y": np.arange(16)},
            lanes=16),
    exec=ExecConfig(superplan=True),
    backend="bitplane",
)
assert result.output == int((np.arange(16) * np.arange(16)).sum())
snap = plan_cache_snapshot()
assert snap["superplans"] >= 1, snap
print(f"superplan: {payload['superplan_seconds']}s fused vs "
      f"{payload['per_instruction_seconds']}s per-instruction "
      f"({speedup}x warm), checksum+microops identical; "
      f"{snap['superplans']} superplans cached")
EOF

echo "== fault-injection smoke =="
python - <<'EOF'
import numpy as np

from repro.api import FaultPlan, Observer
from repro.engine.system import CAPEConfig
from repro.runtime.job import Footprint, Job
from repro.runtime.pool import DevicePool

NANO = CAPEConfig(name="nano", num_chains=8)  # 256 lanes


def make_jobs():
    jobs = []
    for i in range(50):
        rng = np.random.default_rng(3000 + i)
        data = rng.integers(0, 1 << 20, size=64).astype(np.int64)

        def body(system, data=data):
            system.memory.write_words(0x1000, data)
            system.vsetvl(64)
            system.vle(1, 0x1000)
            system.vadd(2, 1, 1)
            return int(system.vredsum(2, signed=False))

        jobs.append(
            Job(f"smoke{i:02d}", body, Footprint(lanes=64, resident=True),
                golden=int(2 * data.sum()),
                backend="bitplane" if i % 2 else None)
        )
    return jobs


def run(plan=None, observer=None):
    pool = DevicePool(
        (NANO, NANO, NANO), memory_bytes=1 << 22, fault_plan=plan,
        observer=observer, failure_threshold=2, quarantine_cycles=2_000.0,
        retry_backoff_cycles=300.0, max_retries=4,
    )
    jobs = pool.submit_stream(make_jobs(), interarrival_cycles=40.0)
    return jobs, pool.run(max_events=100_000)


# A seeded storm: one device dies mid-stream, another gets stuck
# bitcells, a third gets transient HBM corruption (docs/FAULTS.md).
plan = FaultPlan.chaos(seed=0xCA9E, devices=3, kill_cycle=3_000.0)
clean_jobs, _ = run()
obs = Observer()
jobs, report = run(plan=plan, observer=obs)

assert report.completed == 50 and report.failed == 0, report.summary()
clean = {j.name: j.result.output for j in clean_jobs}
for job in jobs:
    assert job.result.output == clean[job.name], job.name
assert obs.metrics.total("faults.injected") > 0
assert report.retries > 0 and report.device_deaths == 1
print(f"chaos stream (seed {plan.seed:#x}): 50/50 jobs identical to "
      f"fault-free run through {obs.metrics.total('faults.injected'):.0f} "
      f"injected faults, {report.retries} retries, "
      f"{report.quarantines} quarantines, {report.device_deaths} device death")
EOF

echo "== serving smoke (process-sharded gateway) =="
python - <<'EOF'
import asyncio

import numpy as np

from repro.engine.system import CAPEConfig
from repro.runtime import DevicePool
from repro.serve import Gateway, JobSpec, ServeConfig

NANO = CAPEConfig(name="nano", num_chains=8)  # 256 lanes


def make_specs():
    specs = []
    for i in range(20):
        if i % 2:
            specs.append(JobSpec(
                f"dot{i:02d}", "dot",
                {"x": np.arange(16) + i, "y": np.arange(16) + 1}, lanes=16,
            ))
        else:
            specs.append(JobSpec(
                f"match{i:02d}", "match_count",
                {"data": np.arange(32) % 5, "needle": i % 5}, lanes=32,
            ))
    return specs


# Sequential reference: the same mix through the in-process pool.
pool = DevicePool((NANO, NANO), memory_bytes=1 << 22)
seq_jobs = pool.submit_stream(
    [s.to_job() for s in make_specs()], interarrival_cycles=40.0
)
pool.run()
seq = {j.name: j.result.output for j in seq_jobs}


async def main():
    cfg = ServeConfig(
        configs=(NANO, NANO), workers=2, memory_bytes=1 << 22
    )
    async with Gateway(cfg) as gateway:
        return await asyncio.gather(
            *(gateway.submit_retrying(s) for s in make_specs())
        )

results = asyncio.run(main())
assert len(results) == 20 and all(r.ok for r in results)
served = {r.name: r.output for r in results}
assert served == seq, "gateway outputs diverged from sequential pool"
workers = {r.worker_id for r in results}
print(f"gateway served 20/20 mixed jobs across workers {sorted(workers)}; "
      f"checksums match the sequential pool")
EOF

echo "== resilience smoke (transport-fault storm) =="
python - <<'EOF'
import sys

sys.path.insert(0, "benchmarks")
from bench_resilience import assert_resilience, run_benchmark

# The BENCH_9 soak, smoke-sized and live: one seeded transport storm
# (hang + stragglers + dropped/garbled replies + a process kill)
# through the gateway, fault-free vs hedging-off vs hedging-on. Every
# admitted request must complete bit-identical to fault-free, and the
# hedged storm p99 must beat unhedged — the unhedged tail is a
# detection timeout, the hedged tail a service time (docs/SERVING.md).
payload = run_benchmark(num_requests=48)
assert_resilience(payload)
off, on = payload["storm_hedging_off"], payload["storm_hedging_on"]
assert on["goodput_req_per_s"] > 0 and off["goodput_req_per_s"] > 0
print(
    f"storm (seed {payload['storm']['seed']}): "
    f"{payload['requests']}/{payload['requests']} requests bit-identical "
    f"to fault-free; goodput {on['goodput_req_per_s']} req/s hedged vs "
    f"{off['goodput_req_per_s']} unhedged, p99 {on['p99_latency_s']:.3f}s "
    f"vs {off['p99_latency_s']:.3f}s "
    f"({payload['p99_improvement_hedged']}x)"
)
EOF

echo "== wire smoke (shm data plane + batched dispatch) =="
python - <<'EOF'
import glob
import sys

sys.path.insert(0, "benchmarks")
from bench_serving import run_wire_compare

# The BENCH_10 large-payload cell, live: the same 1M-element request
# stream through the gateway on the inline-pickle plane vs the
# shared-memory plane with a 2 ms batch window. The shm plane must be
# purely a transport win — numpy-computed checksums identical in both
# modes — and at least 1.5x the pickle plane's req/s (the committed
# BENCH_10.json records >= 3x; the smoke bar leaves headroom for a
# loaded host). Afterwards /dev/shm must hold no cape-* residue: the
# parent owns every slab and ring and unlinks them all at close.
point = run_wire_compare(1_000_000, 12)
assert point["checksums_identical"], point
for tier in ("pickle", "shm"):
    assert point[tier]["completed"] == point["requests"], point[tier]
    assert point[tier]["payload_bytes_out"] > 0, point[tier]
assert point["shm"]["shm_hits"] > 0, point["shm"]
speedup = point["speedup_shm_vs_pickle"]
assert speedup >= 1.5, f"shm+batched speedup {speedup}x < 1.5x"
residue = glob.glob("/dev/shm/cape-wire-*") + glob.glob("/dev/shm/cape-ring-*")
assert not residue, f"leaked shm segments: {residue}"
print(f"wire: {point['requests']} x {point['payload_bytes']} B requests, "
      f"{point['shm']['req_per_s']} req/s shm+batched vs "
      f"{point['pickle']['req_per_s']} pickle ({speedup}x), "
      f"{point['shm']['jobs_per_frame']} jobs/frame, checksums identical, "
      f"no /dev/shm residue")
EOF

echo "== gang smoke (stacked plan replay) =="
python - <<'EOF'
import time

import numpy as np

from repro.engine.system import CAPEConfig
from repro.obs import Observer
from repro.runtime.job import Footprint, Job
from repro.runtime.pool import DevicePool

NANO = CAPEConfig(name="nano", num_chains=8)  # 256 lanes


def make_jobs():
    # Homogeneous mix: identical program structure (no per-job
    # scalars — those land in the plan key and split the gang),
    # member-specific data.
    jobs = []
    for i in range(8):
        rng = np.random.default_rng(0x6A46 + i)
        a = rng.integers(0, 1 << 20, 256).astype(np.int64)

        def body(system, a=a):
            system.memory.write_words(0x1000, a)
            system.vsetvl(256)
            system.vle(1, 0x1000)
            system.vadd(2, 1, 1)
            for _ in range(12):
                system.vmul(3, 2, 1)
                system.vadd(2, 3, 1)
            return int(system.vredsum(2, signed=False))

        jobs.append(Job(f"gang{i}", body, Footprint(lanes=256)))
    return jobs


def run(gang):
    obs = Observer()
    pool = DevicePool((NANO,) * 8, backend="bitplane", gang=gang,
                      observer=obs)
    jobs = make_jobs()
    for job in jobs:
        pool.submit(job)
    start = time.perf_counter()
    report = pool.run()
    wall = time.perf_counter() - start
    outputs = [j.result.output for j in jobs]
    uops = obs.metrics.total("csb.microops")
    return wall, outputs, uops, report.makespan_cycles, obs


run(False)  # warm the shared plan cache
seq_wall, seq_out, seq_uops, seq_makespan, _ = min(
    (run(False) for _ in range(2)), key=lambda r: r[0]
)
gang_wall, gang_out, gang_uops, gang_makespan, obs = min(
    (run(True) for _ in range(2)), key=lambda r: r[0]
)
assert gang_out == seq_out, "gang outputs diverged from sequential"
assert gang_uops == seq_uops, (gang_uops, seq_uops)
assert gang_makespan == seq_makespan
assert obs.metrics.total("gang.hit") == 8, "batch did not gang"
speedup = seq_wall / gang_wall
assert speedup >= 2.0, f"gang speedup {speedup:.2f}x < 2x"
print(f"gang: 8 homogeneous jobs over 8 devices in {gang_wall:.3f}s vs "
      f"{seq_wall:.3f}s sequential ({speedup:.1f}x), checksums, microops "
      f"({gang_uops:.0f}) and makespan identical")
EOF

echo "== tier-1 tests =="
python -m pytest -x -q "$@"

echo "== slow markers =="
python -m pytest -q -m slow benchmarks/bench_table2_microops.py \
    tests/integration/test_chaos.py tests/serve/test_saturation.py \
    tests/gang/test_gang_chaos.py tests/serve/test_resilience.py \
    tests/serve/test_wire.py
