#!/usr/bin/env bash
# Repo health check: byte-compile the library, then run the tier-1 suite.
#
# Usage:  scripts/check.sh [extra pytest args]
set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall src =="
python -m compileall -q src

echo "== tier-1 tests =="
python -m pytest -x -q "$@"
