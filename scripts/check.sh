#!/usr/bin/env bash
# Repo health check: byte-compile the library, then run the tier-1 suite.
#
# Usage:  scripts/check.sh [extra pytest args]
set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall src =="
python -m compileall -q src

echo "== backend equivalence smoke =="
python - <<'EOF'
import numpy as np
from repro.assoc.emulator import AssociativeEmulator

rng = np.random.default_rng(0)
a = rng.integers(0, 1 << 32, size=16, dtype=np.int64)
b = rng.integers(0, 1 << 32, size=16, dtype=np.int64)
for mnemonic in ("vadd.vv", "vmul.vv", "vmslt.vv", "vredsum.vs"):
    runs = {}
    for backend in ("reference", "bitplane"):
        emu = AssociativeEmulator(num_cols=16, backend=backend)
        runs[backend] = emu.run(mnemonic, a, b, width=32)
    ref, fast = runs["reference"], runs["bitplane"]
    assert np.array_equal(np.asarray(ref.result), np.asarray(fast.result)), mnemonic
    assert ref.stats.counts == fast.stats.counts, mnemonic
print("reference == bitplane on", "vadd.vv vmul.vv vmslt.vv vredsum.vs")
EOF

echo "== observability smoke =="
python - <<'EOF'
import json

from repro.api import CAPE32K, Device, Observer

obs = Observer()
device = Device(CAPE32K, backend="bitplane", observer=obs)
device.run(
    """
        li a0, 64
        vsetvli t0, a0, e32
        vmv.v.x v1, a0
        vmv.v.x v2, t0
        vadd.vv v3, v1, v2
        ecall
    """
)
cats = set(obs.tracer.categories())
assert {"interpreter", "microcode", "runtime"} <= cats, cats
for family in ("csb.microops", "vcu.instructions", "engine.cycles",
               "isa.instructions"):
    assert obs.metrics.total(family) > 0, family
payload = json.loads(obs.tracer.chrome_json())
assert payload["traceEvents"]
print(f"traced bitplane run: {len(obs.tracer)} events, "
      f"{len(obs.metrics)} metric series, chrome export valid")
EOF

echo "== tier-1 tests =="
python -m pytest -x -q "$@"

echo "== slow markers =="
python -m pytest -q -m slow benchmarks/bench_table2_microops.py
