"""Chaos-soak benchmark: the serving tier under a transport-fault storm.

Drives one seeded :meth:`FaultPlan.transport_storm` — hangs, stragglers,
dropped replies, garbled replies, a process kill — through the asyncio
:class:`Gateway` three ways on an identical request stream:

* **fault-free** — the checksum oracle and the latency floor;
* **storm, hedging off** — recovery rides the hang/timeout detectors
  alone, so every wedged dispatch eats the full detection budget;
* **storm, hedging on** — stragglers are re-dispatched after
  ``hedge_after_s`` and the first clean reply wins, collapsing the tail.

Writes ``BENCH_9.json``: p50/p99 wall latency and goodput (completed
requests per wall second) per mode, hedge/breaker/fault counters, and
the checksum verdicts. The resilience claims are asserted always:
every admitted request completes, all three checksums are identical,
and the storm's p99 improves with hedging on vs off. Wall-clock
*magnitudes* vary with the host; the p99 ordering does not, because the
unhedged tail is a detection timeout while the hedged tail is a service
time.

Run directly (``python benchmarks/bench_resilience.py``) for the full
soak, or via pytest for the smoke-sized version check.sh runs.
"""

import asyncio
import json
import time
from pathlib import Path

import numpy as np

from repro.engine.system import CAPEConfig
from repro.faults import FaultPlan
from repro.serve import Gateway, JobSpec, ResilienceConfig, ServeConfig

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_9.json"

TINY = CAPEConfig(name="tiny", num_chains=64)
WORKERS = 4
STORM_SEED = 9

#: Shared policy: fast heartbeats, a 0.5 s hang verdict.
BASE = dict(heartbeat_interval_s=0.02, hang_timeout_s=0.5)
HEDGE_AFTER_S = 0.05


def build_specs(n, seed=9):
    rng = np.random.default_rng(seed)
    specs = []
    for i in range(n):
        if i % 2 == 0:
            specs.append(
                JobSpec(
                    f"r{i:03d}", "dot",
                    {"x": rng.integers(0, 99, size=16),
                     "y": rng.integers(0, 99, size=16)},
                    lanes=16,
                )
            )
        else:
            specs.append(
                JobSpec(
                    f"r{i:03d}", "match_count",
                    {"data": rng.integers(0, 7, size=32),
                     "needle": int(rng.integers(0, 7))},
                    lanes=32,
                )
            )
    return specs


def storm_plan():
    """The seeded storm: same integer, same storm, every run."""
    return FaultPlan.transport_storm(
        STORM_SEED,
        workers=WORKERS,
        hangs=1,
        slows=2,
        drops=2,
        garbles=2,
        kills=1,
        max_job=8,
        slow_delay_s=(0.05, 0.2),
    )


def checksum(results):
    ordered = sorted(results, key=lambda r: r.name)
    return hash(tuple((r.name, r.output) for r in ordered))


def run_mode(specs, fault_plan, resilience, worker_timeout):
    async def main():
        cfg = ServeConfig(
            configs=(TINY,) * WORKERS,
            workers=WORKERS,
            max_queue=max(64, len(specs)),
            worker_timeout=worker_timeout,
            fault_plan=fault_plan,
            resilience=resilience,
        )
        async with Gateway(cfg) as gateway:
            start = time.perf_counter()
            results = await asyncio.gather(
                *(gateway.submit_retrying(s, attempts=50) for s in specs)
            )
            elapsed = time.perf_counter() - start
            return elapsed, results, gateway.report()

    elapsed, results, report = asyncio.run(main())
    return {
        "wall_s": round(elapsed, 4),
        "goodput_req_per_s": round(report.completed / elapsed, 1),
        "p50_latency_s": round(report.latency_percentile(50), 6),
        "p99_latency_s": round(report.latency_percentile(99), 6),
        "completed": report.completed,
        "failed": report.failed,
        "retries": report.retries,
        "worker_deaths": report.worker_deaths,
        "worker_unresponsive": report.worker_unresponsive,
        "hedges_issued": report.hedges_issued,
        "hedges_won": report.hedges_won,
        "hedges_wasted": report.hedges_wasted,
        "breaker_trips": report.breaker_trips,
        "transport_faults": dict(report.transport_faults),
        "checksum": checksum(results),
    }


def run_benchmark(num_requests=96):
    import os

    specs = build_specs(num_requests)
    storm = storm_plan()

    free = run_mode(
        specs, None, ResilienceConfig(**BASE), worker_timeout=5.0
    )
    off = run_mode(
        specs, storm, ResilienceConfig(**BASE), worker_timeout=1.0
    )
    on = run_mode(
        specs, storm,
        ResilienceConfig(**BASE, hedge=True, hedge_after_s=HEDGE_AFTER_S),
        worker_timeout=1.0,
    )

    oracle = free.pop("checksum")
    verdicts = {
        "storm_hedging_off": off.pop("checksum") == oracle,
        "storm_hedging_on": on.pop("checksum") == oracle,
    }
    return {
        "benchmark": "serving-tier resilience under a transport-fault storm",
        "cpu_count": os.cpu_count(),
        "requests": num_requests,
        "workers": WORKERS,
        "storm": storm.as_dict(),
        "policy": {
            **BASE,
            "hedge_after_s": HEDGE_AFTER_S,
            "worker_timeout_s": 1.0,
        },
        "fault_free": free,
        "storm_hedging_off": off,
        "storm_hedging_on": on,
        "checksums_identical_to_fault_free": verdicts,
        "p99_improvement_hedged": round(
            off["p99_latency_s"] / max(on["p99_latency_s"], 1e-9), 2
        ),
        "note": (
            "the unhedged storm tail is a detection timeout (hang verdict "
            "or per-dispatch fallback); the hedged tail is a service time "
            "— p99 ordering holds on any host, magnitudes do not"
        ),
    }


def assert_resilience(payload):
    for mode, ok in payload["checksums_identical_to_fault_free"].items():
        assert ok, f"{mode} diverged from the fault-free checksum"
    for mode in ("fault_free", "storm_hedging_off", "storm_hedging_on"):
        tier = payload[mode]
        assert tier["completed"] == payload["requests"], (mode, tier)
        assert tier["failed"] == 0, (mode, tier)
    off, on = payload["storm_hedging_off"], payload["storm_hedging_on"]
    assert on["hedges_issued"] >= 1
    assert on["p99_latency_s"] < off["p99_latency_s"], (
        "hedging did not improve the storm p99",
        on["p99_latency_s"],
        off["p99_latency_s"],
    )


def test_bench_resilience():
    payload = run_benchmark(num_requests=48)
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(json.dumps(payload, indent=2))
    assert_resilience(payload)


if __name__ == "__main__":
    payload = run_benchmark()
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    assert_resilience(payload)
    print(f"wrote {BENCH_JSON}")
