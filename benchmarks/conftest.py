"""Benchmark configuration: every experiment runs once, deterministically."""

import pytest

from repro.engine.system import CAPE32K, CAPE131K

#: Design-point presets selectable from the command line.
DEVICE_PRESETS = {
    "cape32k": CAPE32K,
    "cape131k": CAPE131K,
}


def pytest_addoption(parser):
    parser.addoption(
        "--device",
        default="cape32k",
        choices=sorted(DEVICE_PRESETS),
        help="CAPE design point the device-parameterised benches run on",
    )


@pytest.fixture
def device_config(request):
    """The CAPE design point selected with ``--device`` (CAPE32k default)."""
    return DEVICE_PRESETS[request.config.getoption("--device")]


@pytest.fixture
def once(benchmark):
    """Run a (deterministic, expensive) experiment exactly once under
    pytest-benchmark and return its result."""

    def run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
