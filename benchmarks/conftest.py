"""Benchmark configuration: every experiment runs once, deterministically."""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a (deterministic, expensive) experiment exactly once under
    pytest-benchmark and return its result."""

    def run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
