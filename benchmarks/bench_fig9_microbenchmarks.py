"""Figure 9 [reconstructed]: microbenchmark speedups across systems.

Section VI-D's text is truncated in our source; the microbenchmark set
here (vvadd, vvmul, saxpy, memcpy, dotprod, idxsrch) reconstructs it from
the kernels the surviving text names (idxsrch and the roofline anchors).
Prints CAPE32k/CAPE131k speedups over the area-equivalent 1/2-core
baselines.
"""

import math

from repro.eval.harness import run_micro_suite
from repro.eval.tables import format_table


def test_fig9_microbenchmarks(once):
    rows = once(run_micro_suite)
    print()
    print("Figure 9 — microbenchmark speedups (area-equivalent comparisons)")
    print(
        format_table(
            ["bench", "intensity", "CAPE32k vs 1-core", "CAPE131k vs 2-core"],
            [
                [r.name, r.intensity, round(r.speedup_32k, 2), round(r.speedup_131k, 2)]
                for r in rows
            ],
        )
    )
    by_name = {r.name: r for r in rows}
    # Streaming kernels win clearly; idxsrch is capped by its serialized
    # post-processing.
    assert by_name["vvadd"].speedup_32k > 2
    assert by_name["memcpy"].speedup_32k > 2
    assert by_name["idxsrch"].speedup_32k < by_name["vvadd"].speedup_32k
