"""Figure 9 [reconstructed]: microbenchmark speedups across systems.

Section VI-D's text is truncated in our source; the microbenchmark set
here (vvadd, vvmul, saxpy, memcpy, dotprod, idxsrch) reconstructs it from
the kernels the surviving text names (idxsrch and the roofline anchors).
Prints CAPE32k/CAPE131k speedups over the area-equivalent 1/2-core
baselines.

``--backend-compare`` (also ``test_fig9_backend_speedup``) additionally
runs the same kernel set as *real associative microcode* on a bit-level
CSB under each execution backend (see docs/BACKENDS.md), records the
wall times in ``BENCH_2.json``, and asserts the vectorized bit-plane
backend is at least an order of magnitude faster than the per-chain
reference loop.
"""

import json
import math
import time
from pathlib import Path

from repro.eval.harness import run_micro_suite
from repro.eval.tables import format_table

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_2.json"


def test_fig9_microbenchmarks(once):
    rows = once(run_micro_suite)
    print()
    print("Figure 9 — microbenchmark speedups (area-equivalent comparisons)")
    print(
        format_table(
            ["bench", "intensity", "CAPE32k vs 1-core", "CAPE131k vs 2-core"],
            [
                [r.name, r.intensity, round(r.speedup_32k, 2), round(r.speedup_131k, 2)]
                for r in rows
            ],
        )
    )
    by_name = {r.name: r for r in rows}
    # Streaming kernels win clearly; idxsrch is capped by its serialized
    # post-processing.
    assert by_name["vvadd"].speedup_32k > 2
    assert by_name["memcpy"].speedup_32k > 2
    assert by_name["idxsrch"].speedup_32k < by_name["vvadd"].speedup_32k


def _bit_level_suite(backend, num_chains=64, sew=8, seed=7):
    """Run the Figure 9 kernel set as real microcode on a bit-level CSB.

    Delegates to :func:`repro.eval.microprofile.run_fig9_kernels` (the
    canonical kernel runner, shared with ``bench_table2_microops.py``)
    with observability off, so the timing is the null-observer fast
    path. Returns ``(elapsed_seconds, checksum)``; the checksum must
    agree across backends.
    """
    from repro.eval.microprofile import run_fig9_kernels

    return run_fig9_kernels(backend, num_chains=num_chains, sew=sew, seed=seed)


def run_backend_profile(backend, num_chains=64, sew=8):
    """Time the suite (null observer), then profile it (observer on).

    Prints the per-kernel cycle/energy/microop breakdown derived from
    the observer's counters — the ``obs.report`` replacement for the
    bench's former hand-rolled accounting — and returns the profile.
    """
    from repro.eval.microprofile import profile_fig9_kernels

    elapsed, checksum = _bit_level_suite(backend, num_chains=num_chains, sew=sew)
    print(
        f"{backend}: {elapsed:.4f}s wall (null observer), "
        f"checksum {checksum}"
    )
    if BENCH_JSON.exists():
        baseline = json.loads(BENCH_JSON.read_text())
        key = f"{backend}_seconds"
        if key in baseline and baseline["config"] == {
            "num_chains": num_chains, "sew": sew,
        }:
            delta = elapsed / baseline[key] - 1.0
            print(f"vs BENCH_2.json {baseline[key]}s: {delta:+.1%}")
    profile = profile_fig9_kernels(backend, num_chains=num_chains, sew=sew)
    print(profile.table(title=f"fig9 kernels — {backend} backend"))
    return profile


def run_backend_compare(num_chains=64, sew=8):
    """Time the bit-level kernel suite under both backends.

    Returns the ``BENCH_2.json`` payload. The reference backend walks a
    Python loop per chain, so its cost grows with the chain count; the
    bit-plane backend executes all chains ganged in lockstep.
    """
    timings = {}
    checksums = {}
    for backend in ("reference", "bitplane"):
        timings[backend], checksums[backend] = _bit_level_suite(
            backend, num_chains=num_chains, sew=sew
        )
    assert checksums["reference"] == checksums["bitplane"]
    speedup = timings["reference"] / timings["bitplane"]
    return {
        "benchmark": "fig9 kernels as bit-level microcode (vvadd, vvmul, "
        "saxpy, memcpy, dotprod, idxsrch)",
        "config": {"num_chains": num_chains, "sew": sew},
        "reference_seconds": round(timings["reference"], 4),
        "bitplane_seconds": round(timings["bitplane"], 4),
        "speedup": round(speedup, 1),
    }


def test_fig9_backend_speedup():
    payload = run_backend_compare()
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print("Figure 9 kernels as microcode — backend comparison")
    print(json.dumps(payload, indent=2))
    assert payload["speedup"] >= 10


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend-compare",
        action="store_true",
        help="time the kernels as bit-level microcode under both "
        "backends and write BENCH_2.json",
    )
    parser.add_argument(
        "--backend",
        choices=("reference", "bitplane"),
        help="time the kernels on one backend (null observer), then "
        "print the observer-derived per-kernel profile",
    )
    parser.add_argument("--num-chains", type=int, default=64)
    parser.add_argument("--sew", type=int, default=8)
    args = parser.parse_args()
    if args.backend:
        run_backend_profile(
            args.backend, num_chains=args.num_chains, sew=args.sew
        )
    elif args.backend_compare:
        result = run_backend_compare(num_chains=args.num_chains, sew=args.sew)
        BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")
        print(json.dumps(result, indent=2))
        print(f"wrote {BENCH_JSON}")
    else:
        parser.error("run under pytest, or pass --backend/--backend-compare")
