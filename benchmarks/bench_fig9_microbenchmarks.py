"""Figure 9 [reconstructed]: microbenchmark speedups across systems.

Section VI-D's text is truncated in our source; the microbenchmark set
here (vvadd, vvmul, saxpy, memcpy, dotprod, idxsrch) reconstructs it from
the kernels the surviving text names (idxsrch and the roofline anchors).
Prints CAPE32k/CAPE131k speedups over the area-equivalent 1/2-core
baselines.

``--backend-compare`` (also ``test_fig9_backend_speedup``) additionally
runs the same kernel set as *real associative microcode* on a bit-level
CSB under each execution backend (see docs/BACKENDS.md), records the
wall times in ``BENCH_2.json``, and asserts the vectorized bit-plane
backend is at least an order of magnitude faster than the per-chain
reference loop.
"""

import json
import math
import time
from contextlib import contextmanager
from pathlib import Path

from repro.eval.harness import run_micro_suite
from repro.eval.tables import format_table

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_2.json"
BENCH5_JSON = Path(__file__).resolve().parent.parent / "BENCH_5.json"
BENCH8_JSON = Path(__file__).resolve().parent.parent / "BENCH_8.json"


def test_fig9_microbenchmarks(once):
    rows = once(run_micro_suite)
    print()
    print("Figure 9 — microbenchmark speedups (area-equivalent comparisons)")
    print(
        format_table(
            ["bench", "intensity", "CAPE32k vs 1-core", "CAPE131k vs 2-core"],
            [
                [r.name, r.intensity, round(r.speedup_32k, 2), round(r.speedup_131k, 2)]
                for r in rows
            ],
        )
    )
    by_name = {r.name: r for r in rows}
    # Streaming kernels win clearly; idxsrch is capped by its serialized
    # post-processing.
    assert by_name["vvadd"].speedup_32k > 2
    assert by_name["memcpy"].speedup_32k > 2
    assert by_name["idxsrch"].speedup_32k < by_name["vvadd"].speedup_32k


def _bit_level_suite(backend, num_chains=64, sew=8, seed=7):
    """Run the Figure 9 kernel set as real microcode on a bit-level CSB.

    Delegates to :func:`repro.eval.microprofile.run_fig9_kernels` (the
    canonical kernel runner, shared with ``bench_table2_microops.py``)
    with observability off, so the timing is the null-observer fast
    path. Returns ``(elapsed_seconds, checksum)``; the checksum must
    agree across backends.
    """
    from repro.eval.microprofile import run_fig9_kernels

    return run_fig9_kernels(backend, num_chains=num_chains, sew=sew, seed=seed)


def run_backend_profile(backend, num_chains=64, sew=8):
    """Time the suite (null observer), then profile it (observer on).

    Prints the per-kernel cycle/energy/microop breakdown derived from
    the observer's counters — the ``obs.report`` replacement for the
    bench's former hand-rolled accounting — and returns the profile.
    """
    from repro.eval.microprofile import profile_fig9_kernels

    elapsed, checksum = _bit_level_suite(backend, num_chains=num_chains, sew=sew)
    print(
        f"{backend}: {elapsed:.4f}s wall (null observer), "
        f"checksum {checksum}"
    )
    if BENCH_JSON.exists():
        baseline = json.loads(BENCH_JSON.read_text())
        key = f"{backend}_seconds"
        if key in baseline and baseline["config"] == {
            "num_chains": num_chains, "sew": sew,
        }:
            delta = elapsed / baseline[key] - 1.0
            print(f"vs BENCH_2.json {baseline[key]}s: {delta:+.1%}")
    profile = profile_fig9_kernels(backend, num_chains=num_chains, sew=sew)
    print(profile.table(title=f"fig9 kernels — {backend} backend"))
    return profile


def run_backend_compare(num_chains=64, sew=8):
    """Time the bit-level kernel suite under both backends.

    Returns the ``BENCH_2.json`` payload. The reference backend walks a
    Python loop per chain, so its cost grows with the chain count; the
    bit-plane backend executes all chains ganged in lockstep.
    """
    timings = {}
    checksums = {}
    for backend in ("reference", "bitplane"):
        timings[backend], checksums[backend] = _bit_level_suite(
            backend, num_chains=num_chains, sew=sew
        )
    assert checksums["reference"] == checksums["bitplane"]
    speedup = timings["reference"] / timings["bitplane"]
    return {
        "benchmark": "fig9 kernels as bit-level microcode (vvadd, vvmul, "
        "saxpy, memcpy, dotprod, idxsrch)",
        "config": {"num_chains": num_chains, "sew": sew},
        "reference_seconds": round(timings["reference"], 4),
        "bitplane_seconds": round(timings["bitplane"], 4),
        "speedup": round(speedup, 1),
    }


class _WallClockProfile:
    """Duck-typed stand-in for ``ProfileReport``: wall seconds per kernel."""

    def __init__(self):
        self.seconds = {}

    @contextmanager
    def kernel(self, name):
        start = time.perf_counter()
        yield
        self.seconds[name] = round(
            self.seconds.get(name, 0.0) + time.perf_counter() - start, 6
        )


def _timed_suite(plan_cache, num_chains, sew, repeats, superplan=False):
    """Best-of-N wall time plus one per-kernel profiled pass.

    Returns ``(best_seconds, checksum, per_kernel_seconds, microops)``.
    The timing passes run under the null observer; one extra pass with a
    live observer reads the ``csb.microops`` total, which must be
    identical with the plan cache on and off — and with whole-kernel
    superplans on and off.
    """
    from repro.eval.microprofile import run_fig9_kernels
    from repro.obs import Observer

    best, checksum = None, None
    for _ in range(repeats):
        elapsed, checksum = run_fig9_kernels(
            "bitplane", num_chains=num_chains, sew=sew,
            plan_cache=plan_cache, superplan=superplan,
        )
        best = elapsed if best is None else min(best, elapsed)
    wall = _WallClockProfile()
    run_fig9_kernels(
        "bitplane", num_chains=num_chains, sew=sew,
        plan_cache=plan_cache, superplan=superplan, profile=wall,
    )
    observer = Observer()
    _, obs_checksum = run_fig9_kernels(
        "bitplane", num_chains=num_chains, sew=sew,
        plan_cache=plan_cache, superplan=superplan, observer=observer,
    )
    assert obs_checksum == checksum
    return best, checksum, wall.seconds, observer.metrics.total("csb.microops")


def _parallel_pool_compare(num_chains, sew, jobs_per_device=3, devices=4):
    """Wall-time a job batch at ``parallelism=1`` vs ``parallelism=4``.

    Each job runs the compute core of the fig9 suite as bit-plane
    microcode; outputs must match bit-for-bit across the two modes. The
    host speedup is recorded, not asserted — it depends on the host core
    count (``host_cpus`` in the payload; a single-core host can at best
    break even) and how much of each job numpy spends outside the GIL.
    """
    import os

    import numpy as np

    from repro.engine.system import CAPEConfig
    from repro.runtime.job import Footprint, Job
    from repro.runtime.pool import DevicePool

    config = CAPEConfig("fig9-bit", num_chains=num_chains)

    def body(system, seed, rounds=4):
        n = system.config.max_vl
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 1 << sew, n, dtype=np.int64)
        b = rng.integers(0, 1 << sew, n, dtype=np.int64)
        base_a, base_b = 0x10000, 0x80000
        system.vmu.map_range(base_a, 4 * n)
        system.vmu.map_range(base_b, 4 * n)
        system.vmu.store(base_a, a)
        system.vmu.store(base_b, b)
        system.vsetvl(n, sew=sew)
        system.vle(1, base_a)
        system.vle(2, base_b)
        total = 0
        for _ in range(rounds):
            system.vadd(3, 1, 2)
            system.vmul(4, 1, 2)
            system.vadd(5, 4, 3)
            total += int(system.read_vreg(5).sum())
        return total

    def make_jobs():
        return [
            Job(
                f"fig9-{i}",
                lambda system, seed=100 + i: body(system, seed),
                Footprint(lanes=config.max_vl, resident=True),
                backend="bitplane",
            )
            for i in range(jobs_per_device * devices)
        ]

    results = {}
    timings = {}
    for parallelism in (1, devices):
        pool = DevicePool(
            (config,) * devices,
            memory_bytes=1 << 24,
            parallelism=parallelism,
        )
        jobs = [pool.submit(job) for job in make_jobs()]
        start = time.perf_counter()
        pool.run()
        timings[parallelism] = time.perf_counter() - start
        results[parallelism] = [j.result.output for j in jobs]
    assert results[1] == results[devices], "parallel outputs diverged"
    return {
        "jobs": jobs_per_device * devices,
        "devices": devices,
        "parallelism": devices,
        "host_cpus": os.cpu_count(),
        "sequential_seconds": round(timings[1], 4),
        "parallel_seconds": round(timings[devices], 4),
        "speedup": round(timings[1] / timings[devices], 2),
        "outputs_identical": True,
    }


def run_plan_cache_compare(num_chains=64, sew=8, repeats=3):
    """Time the bit-plane fig9 suite with the plan cache on vs off.

    Returns the ``BENCH_5.json`` payload: warm plan-cache wall time vs
    the per-dispatch FSM walk, per-kernel seconds for both, the speedup
    against ``BENCH_2.json``'s recorded bit-plane time, and a parallel
    device-pool comparison. Results and ``csb.microops`` totals must be
    identical in every mode — the plan cache is purely a host-speed
    optimisation.
    """
    from repro.api import plan_cache_snapshot
    from repro.plan import GLOBAL_PLAN_CACHE

    # Warm the shared cache so the "on" timing measures replay, not the
    # one-time compile (real workloads hit a warm process-wide cache).
    GLOBAL_PLAN_CACHE.clear()
    _bit_level_suite("bitplane", num_chains=num_chains, sew=sew)

    on_s, on_ck, on_kernels, on_uops = _timed_suite(
        True, num_chains, sew, repeats
    )
    off_s, off_ck, off_kernels, off_uops = _timed_suite(
        False, num_chains, sew, repeats
    )

    payload = {
        "benchmark": "fig9 kernels as bit-plane microcode — plan cache "
        "on (warm) vs off (per-dispatch FSM walk)",
        "config": {"num_chains": num_chains, "sew": sew},
        "plan_cache_on_seconds": round(on_s, 4),
        "plan_cache_off_seconds": round(off_s, 4),
        "speedup_on_vs_off": round(off_s / on_s, 2),
        "per_kernel_seconds": {"on": on_kernels, "off": off_kernels},
        "checksum_identical": on_ck == off_ck,
        "microops_identical": on_uops == off_uops,
        "plan_cache": plan_cache_snapshot(),
        "parallel_pool": _parallel_pool_compare(num_chains, sew),
    }
    if BENCH_JSON.exists():
        baseline = json.loads(BENCH_JSON.read_text())
        if baseline.get("config") == {"num_chains": num_chains, "sew": sew}:
            payload["baseline_bitplane_seconds"] = baseline["bitplane_seconds"]
            payload["speedup_vs_bench2"] = round(
                baseline["bitplane_seconds"] / on_s, 2
            )
    return payload


def run_superplan_compare(num_chains=64, sew=8, repeats=3):
    """Time the warm bit-plane fig9 suite per-instruction vs superplan.

    Both modes run against a warm :data:`GLOBAL_PLAN_CACHE`; the only
    difference is whether the kernel set's mirror microcode replays one
    cached :class:`~repro.plan.CompiledPlan` per instruction or as fused
    whole-kernel :class:`~repro.plan.Superplan` traces. Returns the
    ``BENCH_8.json`` payload — checksum and ``csb.microops`` totals must
    be identical; only the host wall time is allowed to move.
    """
    from repro.api import plan_cache_snapshot
    from repro.plan import GLOBAL_PLAN_CACHE

    # Warm both tiers of the shared cache (per-op plans + superplans)
    # so each timing measures warm replay, not the one-time fuse.
    GLOBAL_PLAN_CACHE.clear()
    _bit_level_suite("bitplane", num_chains=num_chains, sew=sew)
    from repro.eval.microprofile import run_fig9_kernels

    run_fig9_kernels(
        "bitplane", num_chains=num_chains, sew=sew, superplan=True
    )

    per_s, per_ck, per_kernels, per_uops = _timed_suite(
        True, num_chains, sew, repeats, superplan=False
    )
    sp_s, sp_ck, sp_kernels, sp_uops = _timed_suite(
        True, num_chains, sew, repeats, superplan=True
    )

    payload = {
        "benchmark": "fig9 kernels as bit-plane microcode — warm "
        "per-instruction plan replay vs whole-kernel superplan replay",
        "config": {"num_chains": num_chains, "sew": sew},
        "per_instruction_seconds": round(per_s, 4),
        "superplan_seconds": round(sp_s, 4),
        "speedup_superplan": round(per_s / sp_s, 2),
        "per_kernel_seconds": {
            "per_instruction": per_kernels, "superplan": sp_kernels,
        },
        "checksum_identical": per_ck == sp_ck,
        "microops_identical": per_uops == sp_uops,
        "plan_cache": plan_cache_snapshot(),
    }
    if BENCH5_JSON.exists():
        baseline = json.loads(BENCH5_JSON.read_text())
        if baseline.get("config") == {"num_chains": num_chains, "sew": sew}:
            payload["bench5_plan_cache_on_seconds"] = baseline[
                "plan_cache_on_seconds"
            ]
    return payload


def test_fig9_superplan_speedup():
    payload = run_superplan_compare()
    BENCH8_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print("Figure 9 kernels as microcode — superplan comparison")
    print(json.dumps(payload, indent=2))
    assert payload["checksum_identical"] and payload["microops_identical"]
    assert payload["speedup_superplan"] >= 2
    assert payload["plan_cache"]["superplans"] >= 1


def test_fig9_plan_cache_speedup():
    payload = run_plan_cache_compare()
    BENCH5_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print("Figure 9 kernels as microcode — plan-cache comparison")
    print(json.dumps(payload, indent=2))
    assert payload["checksum_identical"] and payload["microops_identical"]
    assert payload["speedup_on_vs_off"] >= 1.5
    if "speedup_vs_bench2" in payload:
        assert payload["speedup_vs_bench2"] >= 2


def test_fig9_backend_speedup():
    payload = run_backend_compare()
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print("Figure 9 kernels as microcode — backend comparison")
    print(json.dumps(payload, indent=2))
    assert payload["speedup"] >= 10


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend-compare",
        action="store_true",
        help="time the kernels as bit-level microcode under both "
        "backends and write BENCH_2.json",
    )
    parser.add_argument(
        "--backend",
        choices=("reference", "bitplane"),
        help="time the kernels on one backend (null observer), then "
        "print the observer-derived per-kernel profile",
    )
    parser.add_argument(
        "--plan-cache",
        choices=("compare", "on", "off"),
        help="'compare' times the bit-plane suite with the plan cache "
        "on vs off and writes BENCH_5.json; 'on'/'off' time one mode",
    )
    parser.add_argument(
        "--superplan",
        action="store_true",
        help="time the warm bit-plane suite per-instruction vs fused "
        "whole-kernel superplans and write BENCH_8.json",
    )
    parser.add_argument("--num-chains", type=int, default=64)
    parser.add_argument("--sew", type=int, default=8)
    args = parser.parse_args()
    if args.superplan:
        result = run_superplan_compare(
            num_chains=args.num_chains, sew=args.sew
        )
        BENCH8_JSON.write_text(json.dumps(result, indent=2) + "\n")
        print(json.dumps(result, indent=2))
        print(f"wrote {BENCH8_JSON}")
    elif args.plan_cache:
        if args.plan_cache == "compare":
            result = run_plan_cache_compare(
                num_chains=args.num_chains, sew=args.sew
            )
            BENCH5_JSON.write_text(json.dumps(result, indent=2) + "\n")
            print(json.dumps(result, indent=2))
            print(f"wrote {BENCH5_JSON}")
        else:
            from repro.eval.microprofile import run_fig9_kernels

            enabled = args.plan_cache == "on"
            if enabled:  # warm the shared cache first
                run_fig9_kernels(
                    "bitplane", num_chains=args.num_chains, sew=args.sew
                )
            elapsed, checksum = run_fig9_kernels(
                "bitplane", num_chains=args.num_chains, sew=args.sew,
                plan_cache=enabled,
            )
            print(
                f"plan cache {args.plan_cache}: {elapsed:.4f}s wall, "
                f"checksum {checksum}"
            )
    elif args.backend:
        run_backend_profile(
            args.backend, num_chains=args.num_chains, sew=args.sew
        )
    elif args.backend_compare:
        result = run_backend_compare(num_chains=args.num_chains, sew=args.sew)
        BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")
        print(json.dumps(result, indent=2))
        print(f"wrote {BENCH_JSON}")
    else:
        parser.error(
            "run under pytest, or pass --backend/--backend-compare/"
            "--plan-cache"
        )
