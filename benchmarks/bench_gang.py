"""Gang-execution benchmark: one stacked replay vs per-device mirrors.

A homogeneous batch of compute-heavy bit-plane jobs is pushed through a
:class:`~repro.runtime.pool.DevicePool` of K same-shape devices twice —
``gang=False`` (each device walks its own mirror) and ``gang=True``
(each launch wave becomes one stacked :class:`~repro.gang.GangReplay`
whose every plan step is a single batched numpy op over all K member
column blocks). The jobs share their program *structure* (no per-job
scalars — a scalar lands in the plan key and would split the gang), so
every wave gangs at full width.

Writes ``BENCH_7.json``. Correctness is asserted always: outputs,
simulated makespan, and per-device ``csb.microops`` totals must be
bit-identical across modes, and a chaos-hook run that corrupts one
member mid-gang must eject exactly that member and still produce
identical outputs. The speedup is asserted only in the full
``__main__`` measurement (the pytest entry is smoke-sized and merely
records it).

Run directly (``python benchmarks/bench_gang.py``) for the full
measurement.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.engine.system import CAPEConfig
from repro.gang import GangReplay
from repro.obs import Observer
from repro.runtime.job import Footprint, Job
from repro.runtime.pool import DevicePool

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_7.json"

NANO = CAPEConfig(name="nano", num_chains=8)  # 256 lanes
ROUNDS = 12  # vmul+vadd rounds per job: compute-heavy, plan-cache warm


def make_jobs(n, vl=256):
    """n structurally-identical jobs over member-specific data."""
    jobs = []
    for i in range(n):
        rng = np.random.default_rng(0xBE7 + i)
        a = rng.integers(0, 1 << 20, vl).astype(np.int64)
        b = rng.integers(0, 1 << 20, vl).astype(np.int64)

        def body(system, a=a, b=b):
            system.memory.write_words(0x1000, a)
            system.memory.write_words(0x1000 + 4 * len(b), b)
            system.vsetvl(len(a))
            system.vle(1, 0x1000)
            system.vle(2, 0x1000 + 4 * len(b))
            for r in range(ROUNDS):
                system.vmul(3 + (r % 2), 1, 2)
                system.vadd(5, 3 + (r % 2), 1)
            return int(system.vredsum(5, signed=False))

        jobs.append(
            Job(f"gang{i:02d}", body, Footprint(lanes=vl, resident=True))
        )
    return jobs


def run_pool(num_jobs, devices, gang, observer=None):
    pool = DevicePool(
        (NANO,) * devices, backend="bitplane", gang=gang, observer=observer
    )
    jobs = make_jobs(num_jobs)
    for job in jobs:
        pool.submit(job)
    start = time.perf_counter()
    report = pool.run()
    wall = time.perf_counter() - start
    return jobs, report, wall


def measure(num_jobs, devices, gang, repeats=3):
    """Best-of-N wall time plus the run's correctness fingerprint."""
    best = None
    for _ in range(repeats):
        obs = Observer()
        jobs, report, wall = run_pool(num_jobs, devices, gang, observer=obs)
        if best is None or wall < best[2]:
            microops = {
                key: value
                for key, value in obs.metrics.snapshot().items()
                if key[0] == "csb.microops"
            }
            best = (jobs, report, wall, microops, obs)
    return best


def ejection_run(num_jobs, devices):
    """Corrupt one member mid-gang; the batch must heal to identical."""
    fired = {"count": 0}

    def hook(replay, index, kind):
        if kind == "sync" and replay._pending and fired["count"] == 0:
            vd = replay._pending[0]
            replay.backend.bits[0, vd, replay.member_slice(0)] ^= 1
            fired["count"] += 1

    obs = Observer()
    GangReplay.chaos_hook = hook
    try:
        jobs, report, _ = run_pool(num_jobs, devices, True, observer=obs)
    finally:
        GangReplay.chaos_hook = None
    assert fired["count"] == 1, "chaos hook never fired"
    return jobs, report, obs


def run_benchmark(num_jobs=32, devices=16, repeats=3):
    # Warm the process-global plan cache so both modes replay plans.
    run_pool(devices, devices, False)

    seq_jobs, seq_report, seq_wall, seq_microops, _ = measure(
        num_jobs, devices, False, repeats
    )
    gang_jobs, gang_report, gang_wall, gang_microops, gang_obs = measure(
        num_jobs, devices, True, repeats
    )

    outputs = [j.result.output for j in seq_jobs]
    checksum_identical = [j.result.output for j in gang_jobs] == outputs
    cycles_identical = (
        [(j.result.service_cycles, j.result.energy_j) for j in gang_jobs]
        == [(j.result.service_cycles, j.result.energy_j) for j in seq_jobs]
        and gang_report.makespan_cycles == seq_report.makespan_cycles
    )
    microops_identical = gang_microops == seq_microops

    ej_jobs, _ej_report, ej_obs = ejection_run(num_jobs, devices)
    ejection_identical = [j.result.output for j in ej_jobs] == outputs

    return {
        "benchmark": (
            "gang execution: one stacked CompiledPlan replay across K "
            "devices vs per-device bit-plane mirrors"
        ),
        "config": {
            "design_point": "nano (8 chains, 256 lanes)",
            "devices": devices,
            "jobs": num_jobs,
            "rounds_per_job": ROUNDS,
            "vl": 256,
            "repeats": repeats,
        },
        "sequential_seconds": round(seq_wall, 4),
        "gang_seconds": round(gang_wall, 4),
        "speedup": round(seq_wall / gang_wall, 2),
        "gang_hits": gang_obs.metrics.total("gang.hit"),
        "gang_misses": gang_obs.metrics.total("gang.miss"),
        "checksum_identical": checksum_identical,
        "cycles_energy_makespan_identical": cycles_identical,
        "microops_identical": microops_identical,
        "mid_gang_ejection": {
            "ejected_members": ej_obs.metrics.total("gang.ejected"),
            "outputs_identical_to_fault_free": ejection_identical,
        },
    }


def test_bench_gang():
    payload = run_benchmark(num_jobs=8, devices=8, repeats=1)
    print()
    print(json.dumps(payload, indent=2))
    assert payload["checksum_identical"]
    assert payload["cycles_energy_makespan_identical"]
    assert payload["microops_identical"]
    assert payload["gang_hits"] == 8 and payload["gang_misses"] == 0
    assert payload["mid_gang_ejection"]["ejected_members"] == 1
    assert payload["mid_gang_ejection"]["outputs_identical_to_fault_free"]


if __name__ == "__main__":
    payload = run_benchmark()
    assert payload["checksum_identical"]
    assert payload["cycles_energy_makespan_identical"]
    assert payload["microops_identical"]
    assert payload["mid_gang_ejection"]["outputs_identical_to_fault_free"]
    assert payload["speedup"] >= 4.0, payload["speedup"]
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"wrote {BENCH_JSON}")
