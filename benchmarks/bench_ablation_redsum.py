"""Ablation: horizontal reductions (Section V-G).

The paper's claim: a vector redsum is roughly eight times faster than an
element-wise vector addition, because all rows of all chains reduce
bit-serially in parallel through the pipelined tree. Prints the measured
ratio at both design points.
"""

from repro.engine.system import CAPE131K, CAPE32K, CAPESystem
from repro.eval.tables import format_table


def measure_ratio(config):
    cape = CAPESystem(config)
    cape.vsetvl(config.max_vl)
    before = cape.stats.cycles
    cape.vadd(2, 1, 1)
    add_cycles = cape.stats.cycles - before
    before = cape.stats.cycles
    cape.vredsum(1)
    red_cycles = cape.stats.cycles - before
    return add_cycles, red_cycles


def run_ablation():
    return {
        config.name: measure_ratio(config) for config in (CAPE32K, CAPE131K)
    }


def test_ablation_redsum_vs_add(once):
    results = once(run_ablation)
    print()
    print("Ablation — redsum vs element-wise add (Section V-G: ~8x)")
    rows = []
    for name, (add_c, red_c) in results.items():
        rows.append([name, round(add_c), round(red_c), round(add_c / red_c, 2)])
    print(format_table(["config", "vadd cycles", "vredsum cycles", "ratio"], rows))
    for name, (add_c, red_c) in results.items():
        assert 5 < add_c / red_c < 10
