"""Table II: microoperation delay/energy and the CAPE cycle time.

Prints the circuit-level calibration (delay and bit-serial/bit-parallel
energies per chain) and the frequency derivation of Section VI-B
(237 ps critical path -> 4.22 GHz raw -> 2.7 GHz derated).

Also measures the Table II taxonomy *dynamically*:
:func:`measure_kernel_microops` runs the Fig. 9 kernel set as real
microcode and folds the observer's ``csb.microops`` counters into
per-kernel op/flavour totals — asserted identical across the
``reference`` and ``bitplane`` backends.
"""

import pytest

from repro.circuits.microops import CircuitModel, Microop
from repro.common.units import PJ, PS
from repro.eval.microprofile import profile_fig9_kernels
from repro.eval.tables import format_table


def build_table_ii():
    model = CircuitModel()
    rows = []
    for op in Microop:
        timing = model.timings[op]
        rows.append(
            [
                op.value,
                round(timing.delay_s / PS),
                "-" if timing.bs_energy_j is None else round(timing.bs_energy_j / PJ, 1),
                "-" if timing.bp_energy_j is None else round(timing.bp_energy_j / PJ, 1),
            ]
        )
    return model, rows


def test_table2_microops(once):
    model, rows = once(build_table_ii)
    print()
    print("Table II — microoperation delay and per-chain dynamic energy")
    print(format_table(["microop", "delay (ps)", "BS E (pJ)", "BP E (pJ)"], rows))
    print(
        f"critical path: {model.critical_path_s / PS:.0f} ps -> "
        f"{model.max_frequency_hz / 1e9:.2f} GHz raw -> "
        f"{model.frequency_hz / 1e9:.2f} GHz derated"
    )
    assert round(model.critical_path_s / PS) == 237
    assert abs(model.frequency_hz - 2.7e9) / 2.7e9 < 0.02


def measure_kernel_microops(backend, num_chains=16, sew=8):
    """Per-kernel microop totals (``{kernel: {"op/flavor": count}}``).

    The canonical observer-derived measurement: runs the Fig. 9 kernel
    set as associative microcode on ``backend`` under a
    :class:`~repro.obs.ProfileReport` and returns each kernel's Table II
    op/flavour mix.
    """
    report = profile_fig9_kernels(backend, num_chains=num_chains, sew=sew)
    return {k: report.microop_totals(k) for k in report.kernels}


@pytest.mark.slow
def test_table2_kernel_microops_backend_equal(once):
    """Both backends charge the exact same microop mix per kernel."""
    reference = once(lambda: measure_kernel_microops("reference"))
    bitplane = measure_kernel_microops("bitplane")
    assert reference == bitplane
    compute = {k: v for k, v in bitplane.items() if v}
    assert compute, "no kernel recorded any microops"
    print()
    print("Table II taxonomy per fig9 kernel (both backends identical)")
    print(
        format_table(
            ["kernel", "microops", "mix"],
            [
                [k, sum(v.values()), " ".join(f"{op}:{n}" for op, n in v.items())]
                for k, v in compute.items()
            ],
        )
    )
