"""Table II: microoperation delay/energy and the CAPE cycle time.

Prints the circuit-level calibration (delay and bit-serial/bit-parallel
energies per chain) and the frequency derivation of Section VI-B
(237 ps critical path -> 4.22 GHz raw -> 2.7 GHz derated).
"""

from repro.circuits.microops import CircuitModel, Microop
from repro.common.units import PJ, PS
from repro.eval.tables import format_table


def build_table_ii():
    model = CircuitModel()
    rows = []
    for op in Microop:
        timing = model.timings[op]
        rows.append(
            [
                op.value,
                round(timing.delay_s / PS),
                "-" if timing.bs_energy_j is None else round(timing.bs_energy_j / PJ, 1),
                "-" if timing.bp_energy_j is None else round(timing.bp_energy_j / PJ, 1),
            ]
        )
    return model, rows


def test_table2_microops(once):
    model, rows = once(build_table_ii)
    print()
    print("Table II — microoperation delay and per-chain dynamic energy")
    print(format_table(["microop", "delay (ps)", "BS E (pJ)", "BP E (pJ)"], rows))
    print(
        f"critical path: {model.critical_path_s / PS:.0f} ps -> "
        f"{model.max_frequency_hz / 1e9:.2f} GHz raw -> "
        f"{model.frequency_hz / 1e9:.2f} GHz derated"
    )
    assert round(model.critical_path_s / PS) == 237
    assert abs(model.frequency_hz - 2.7e9) / 2.7e9 < 0.02
