"""Ablation: the replica vector load (Section V-G).

Runs matmul with and without ``vlrw.v``. Without it, the same B^T row is
re-loaded into every register window through ordinary unit-stride loads,
paying the memory traffic the replica load exists to avoid.
"""

from repro.engine.system import CAPE32K, CAPESystem
from repro.eval.tables import format_table
from repro.workloads.phoenix import MatMul

ARGS = dict(m=32, n=512, p=32)


def run_ablation():
    with_replica = MatMul(use_replica=True, **ARGS).run_cape(CAPESystem(CAPE32K))
    without = MatMul(use_replica=False, **ARGS).run_cape(CAPESystem(CAPE32K))
    return with_replica, without


def test_ablation_replica_load(once):
    with_replica, without = once(run_ablation)
    gain = without.seconds / with_replica.seconds
    print()
    print("Ablation — replica vector load (matmul, CAPE32k)")
    print(
        format_table(
            ["variant", "cycles", "seconds (us)"],
            [
                ["vlrw.v", round(with_replica.cycles), round(with_replica.seconds * 1e6, 1)],
                ["no vlrw", round(without.cycles), round(without.seconds * 1e6, 1)],
            ],
        )
    )
    print(f"replica load gain: {gain:.2f}x")
    assert gain > 1.2  # the optimisation pays
