"""Extension: per-application energy breakdown on CAPE.

Not a paper figure — an extension enabled by the instruction-level energy
model (Table I energies x executed lanes, plus HBM transfer energy).
Prints compute vs memory energy for every Phoenix app at the selected
design point (``--device``, CAPE32k by default) and checks the expected
structure: vmul-heavy apps are compute-energy dominated, streaming apps
memory-dominated.
"""

from repro.engine.system import CAPESystem
from repro.eval.tables import format_table
from repro.workloads.phoenix import PHOENIX_APPS


def run_energy_study(config):
    rows = []
    for name, cls in PHOENIX_APPS.items():
        cape = CAPESystem(config)
        cls().run_cape(cape)
        compute_j = cape.vcu.stats.energy_j
        total_j = cape.stats.energy_j
        memory_j = total_j - compute_j
        rows.append(
            [
                name,
                round(total_j * 1e6, 2),
                round(compute_j * 1e6, 2),
                round(memory_j * 1e6, 2),
                round(100 * compute_j / total_j) if total_j else 0,
            ]
        )
    return rows


def test_energy_breakdown(once, device_config):
    rows = once(run_energy_study, device_config)
    print()
    print(f"Extension — {device_config.name} energy breakdown per Phoenix app")
    print(
        format_table(
            ["app", "total (uJ)", "CSB compute (uJ)", "HBM transfer (uJ)", "compute %"],
            rows,
        )
    )
    by_name = {r[0]: r for r in rows}
    # matmul/pca burn energy in the quadratic multiply; memcpy-like
    # transfer portions dominate apps that stream without multiplying.
    assert by_name["matmul"][4] > 50
    assert by_name["pca"][4] > 50
    assert by_name["hist"][4] < by_name["matmul"][4]
