"""Figure 11: Phoenix application speedups (the headline result).

CAPE32k vs one out-of-order tile, CAPE131k vs two, with the three-core
system as reference — the area-equivalent comparison of Section VI-E.
Checks the qualitative structure the paper reports: histogram and kmeans
dominate, kmeans jumps across the capacity cliff, pca is the weakest
matrix app, and the variable-intensity text apps scale worst.
"""

import math

from repro.eval.harness import run_phoenix_suite
from repro.eval.tables import format_table


def test_fig11_phoenix(once):
    rows = once(run_phoenix_suite)
    print()
    print("Figure 11 — Phoenix speedups (area-equivalent comparisons)")
    print(
        format_table(
            [
                "app", "intensity",
                "CAPE32k vs 1-core", "CAPE131k vs 2-core", "CAPE131k vs 3-core",
            ],
            [
                [
                    r.name, r.intensity,
                    round(r.speedup_32k, 2),
                    round(r.speedup_131k, 2),
                    round(r.speedup_131k_vs_3core, 2),
                ]
                for r in rows
            ],
        )
    )
    geo = math.exp(sum(math.log(r.speedup_32k) for r in rows) / len(rows))
    arith = sum(r.speedup_32k for r in rows) / len(rows)
    print(f"CAPE32k vs 1-core: geo-mean {geo:.1f}x, arith-mean {arith:.1f}x")

    by_name = {r.name: r for r in rows}
    # Qualitative structure of the paper's Figure 11:
    assert by_name["hist"].speedup_32k > 8          # the Section II 13x story
    assert by_name["kmeans"].speedup_32k > 10
    assert by_name["kmeans"].speedup_131k > by_name["kmeans"].speedup_32k  # capacity cliff
    assert by_name["pca"].speedup_32k < 3           # weakest matrix app (no vlrw)
    # Text apps scale worse at the bigger design point (Amdahl + command
    # distribution):
    for app in ("wrdcnt", "revidx", "strmatch"):
        assert by_name[app].speedup_131k < by_name[app].speedup_32k
