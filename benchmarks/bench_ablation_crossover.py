"""Ablation: where CAPE stops paying — speedup vs input size.

CAPE's per-instruction costs (command distribution, the bit-serial walk)
are independent of how many lanes are active, so small inputs leave the
CSB underutilised while the baseline's caches shine. This sweep locates
the crossover for a streaming kernel: below it the out-of-order core
wins, above it CAPE does — the flip side of the VLA flexibility story
(Section V-F).
"""

from repro.baseline.ooo import OoOCore
from repro.engine.system import CAPE32K, CAPESystem
from repro.eval.tables import format_table
from repro.workloads.micro import VVAdd

SIZES = [1 << 8, 1 << 10, 1 << 12, 1 << 15, 1 << 18]


def run_sweep():
    rows = []
    for n in SIZES:
        wl = VVAdd(n=n)
        cape = wl.run_cape(CAPESystem(CAPE32K)).seconds
        base = OoOCore().run(VVAdd(n=n).scalar_trace()).seconds
        rows.append([n, round(cape * 1e6, 2), round(base * 1e6, 2),
                     round(base / cape, 2)])
    return rows


def test_ablation_crossover(once):
    rows = once(run_sweep)
    print()
    print("Ablation — vvadd speedup vs input size (CAPE32k vs 1 core)")
    print(format_table(["n", "CAPE (us)", "baseline (us)", "speedup"], rows))
    speedups = [r[3] for r in rows]
    # Monotone-ish growth with size, with the baseline winning (or close)
    # at the smallest input and CAPE winning clearly at the largest.
    assert speedups[0] < 2.0
    assert speedups[-1] > 3.0
    assert speedups[-1] > speedups[0]
