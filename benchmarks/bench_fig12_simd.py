"""Figure 12: SVE SIMD study.

Runs the Phoenix applications on the SVE-like core at 128/256/512-bit
vector widths (4 SIMD ALUs), normalised to the scalar run, and compares
CAPE32k against the 512-bit configuration — the paper's claim is that
CAPE32k achieves, on average, more than five times the 512-bit SVE
performance.
"""

import math

from repro.eval.harness import compare_simd
from repro.eval.tables import format_table
from repro.workloads.phoenix import PHOENIX_APPS


def build_simd_study():
    return [compare_simd(cls) for cls in PHOENIX_APPS.values()]


def test_fig12_simd(once):
    rows = once(build_simd_study)
    print()
    print("Figure 12 — SVE speedups over scalar, and CAPE32k vs SVE-512")
    print(
        format_table(
            ["app", "SVE-128", "SVE-256", "SVE-512", "CAPE32k vs SVE-512"],
            [
                [
                    r.name,
                    round(r.speedup(128), 2),
                    round(r.speedup(256), 2),
                    round(r.speedup(512), 2),
                    round(r.cape_vs_sve512, 2),
                ]
                for r in rows
            ],
        )
    )
    geo = math.exp(sum(math.log(r.cape_vs_sve512) for r in rows) / len(rows))
    print(f"CAPE32k vs SVE-512 geo-mean: {geo:.1f}x")

    # Wider SVE never loses to narrower SVE on these data-parallel apps.
    for r in rows:
        assert r.speedup(512) >= r.speedup(128) * 0.95
    # CAPE32k beats the 512-bit SVE configuration on the apps that play
    # to associative strengths (search-based and reduction-friendly). The
    # paper's >5x *average* rests on its testbed's very large kmeans/hist
    # outliers, which our reduced-scale inputs compress — see
    # EXPERIMENTS.md.
    by_name = {r.name: r for r in rows}
    for app in ("matmul", "hist", "kmeans", "lreg"):
        assert by_name[app].cape_vs_sve512 > 1.0, app
