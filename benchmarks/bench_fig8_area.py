"""Figure 8 and the area-equivalence methodology.

Prints the chain layout footprint (13 x 175 um^2) and the resulting tile
areas of CAPE32k / CAPE131k against the out-of-order reference tile
("slightly under 9 mm^2 at 7 nm").
"""

from repro.circuits.area import AreaModel
from repro.engine.system import CAPE131K, CAPE32K
from repro.eval.tables import format_table


def build_area_report():
    model = AreaModel()
    rows = []
    for config in (CAPE32K, CAPE131K):
        rows.append(
            [
                config.name,
                config.num_chains,
                round(model.csb_area_mm2(config.num_chains), 2),
                round(config.area_mm2(model), 2),
                round(model.equivalent_baseline_cores(config.num_chains), 2),
            ]
        )
    return model, rows


def test_fig8_area(once):
    model, rows = once(build_area_report)
    print()
    print(
        f"Figure 8 — chain layout: {model.chain.width_um:.0f} x "
        f"{model.chain.height_um:.0f} um^2 = {model.chain.area_um2:.0f} um^2"
    )
    print(
        format_table(
            ["config", "chains", "CSB mm^2", "tile mm^2", "OoO-tile equivalents"],
            rows,
        )
    )
    print(f"reference OoO tile: {model.reference_tile_mm2} mm^2")
    assert model.chain.area_um2 == 13 * 175
    assert 0.8 < model.equivalent_baseline_cores(1024) < 1.2
    assert 1.6 < model.equivalent_baseline_cores(4096) < 2.4
