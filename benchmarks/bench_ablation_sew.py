"""Ablation: element width (SEW) and the bit-serial cost model.

Section V-A: CAPE handles element types smaller than 32 bits "relatively
easily, by configuring the microcode to handle sequences under 32 bits".
Because arithmetic is bit-serial, halving the element width roughly
halves add latency and quarters multiply latency — this sweep quantifies
it on a streaming add and multiply kernel at e8/e16/e32.
"""

import numpy as np

from repro.engine.system import CAPESystem
from repro.eval.tables import format_table

N = 1 << 17


def run_kernel(sew: int, config):
    cape = CAPESystem(config)
    data = np.arange(N) % (1 << (sew - 1))
    cape.memory.write_words(0x100000, data)
    cape.memory.write_words(0x900000, data)
    done = 0
    while done < N:
        vl = cape.vsetvl(N - done, sew=sew)
        cape.vle(1, 0x100000 + 4 * done)
        cape.vle(2, 0x900000 + 4 * done)
        cape.vadd(3, 1, 2)
        cape.vmul(4, 1, 2)
        cape.vse(3, 0x1100000 + 4 * done)
        done += vl
    expected = (2 * data) % (1 << sew)
    assert cape.memory.read_words(0x1100000, N).tolist() == expected.tolist()
    return cape.stats


def run_sweep(config):
    return {sew: run_kernel(sew, config) for sew in (8, 16, 32)}


def test_ablation_sew(once, device_config):
    results = once(run_sweep, device_config)
    print()
    print(
        f"Ablation — element width sweep on {device_config.name} "
        f"(add+mul kernel, {N:,} elements)"
    )
    rows = []
    for sew, stats in results.items():
        rows.append(
            [
                f"e{sew}",
                round(stats.compute_cycles),
                round(stats.memory_cycles),
                round(stats.seconds * 1e6, 1),
            ]
        )
    print(format_table(["SEW", "compute cycles", "memory cycles", "total (us)"], rows))
    c8 = results[8].compute_cycles
    c16 = results[16].compute_cycles
    c32 = results[32].compute_cycles
    # Dominated by the quadratic vmul: ~4x per doubling of the width.
    assert 2.5 < c16 / c8 < 4.5
    assert 2.5 < c32 / c16 < 4.5
    # Narrow elements also move fewer bytes.
    assert results[8].memory_cycles < results[32].memory_cycles
