"""Ablation: CSB capacity scaling and its overheads (Section VI-C/E).

Sweeps the chain count and prints (a) the command-distribution and
reduction-tree depths — the per-instruction overheads that grow with
capacity — and (b) a constant- vs a variable-intensity workload's runtime
across the sweep, showing where bigger stops being better.
"""

from repro.assoc.instruction_model import InstructionModel
from repro.engine.system import CAPEConfig, CAPESystem
from repro.engine.vcu import VCU
from repro.eval.tables import format_table
from repro.workloads.phoenix import Histogram, WordCount

CHAIN_SWEEP = [256, 1024, 4096]


def run_sweep():
    model = InstructionModel(width=32)
    rows = []
    for chains in CHAIN_SWEEP:
        vcu = VCU(chains, model)
        config = CAPEConfig(name=f"{chains}ch", num_chains=chains)
        hist = Histogram(n=1 << 17).run_cape(CAPESystem(config))
        wrdcnt = WordCount(n=1 << 17).run_cape(CAPESystem(config))
        rows.append(
            [
                chains,
                chains * 32,
                vcu.distribution_cycles,
                vcu.reduction_tree.num_stages,
                round(hist.seconds * 1e6, 1),
                round(wrdcnt.seconds * 1e6, 1),
            ]
        )
    return rows


def test_ablation_capacity_scaling(once):
    rows = once(run_sweep)
    print()
    print("Ablation — capacity sweep: overheads and scaling behaviour")
    print(
        format_table(
            [
                "chains", "lanes", "cmd-dist cycles", "tree stages",
                "hist (us)", "wrdcnt (us)",
            ],
            rows,
        )
    )
    # Overheads grow with capacity...
    assert rows[-1][2] >= rows[0][2]
    assert rows[-1][3] > rows[0][3]
    # ...constant-intensity hist keeps improving, while the
    # variable-intensity wrdcnt improves far less.
    hist_gain = rows[0][4] / rows[-1][4]
    wrdcnt_gain = rows[0][5] / rows[-1][5]
    assert hist_gain > 2
    assert wrdcnt_gain < hist_gain / 2
