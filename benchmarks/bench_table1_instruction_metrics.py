"""Table I: per-instruction metrics of the RISC-V subset on CAPE.

Regenerates the paper's Table I by *measuring* the reconstructed
microcode on the bit-level chain: truth-table entries, active rows,
reduction cycles, total cycles, and per-lane energy — printed next to the
published closed forms.
"""

from repro.assoc.instruction_model import InstructionModel
from repro.eval.tables import format_table


def build_table_i():
    model = InstructionModel(width=32)
    return model.table_i()


def test_table1_instruction_metrics(once):
    rows = once(build_table_i)
    print()
    print("Table I — RISC-V vector instructions on CAPE (n = 32)")
    print(
        format_table(
            [
                "inst", "cat", "TT ent", "srch rows", "upd rows",
                "red cyc", "cycles (paper)", "cycles (measured)",
                "E/lane pJ (paper)", "E/lane pJ (measured)",
            ],
            [
                [
                    r.mnemonic, r.category, r.tt_entries, r.search_rows,
                    r.update_rows, r.reduction_cycles, r.paper_cycles,
                    r.measured_cycles, r.paper_energy_pj,
                    round(r.energy_per_lane_pj, 2),
                ]
                for r in rows
            ],
        )
    )
    by_name = {r.mnemonic: r for r in rows}
    # The published closed forms, measured exactly by our microcode:
    assert by_name["vadd.vv"].measured_cycles == 258
    assert by_name["vsub.vv"].measured_cycles == 258
    assert by_name["vand.vv"].measured_cycles == 3
    assert by_name["vor.vv"].measured_cycles == 3
    assert by_name["vxor.vv"].measured_cycles == 4
    assert by_name["vmseq.vv"].measured_cycles == 36
    assert by_name["vredsum.vs"].measured_cycles == 32
