"""Section VII: memory-only modes of the CSB.

Exercises the scratchpad, key-value store, and victim-cache
configurations and prints their capacities and per-access cycle costs.
"""

import numpy as np

from repro.csb.csb import CSB
from repro.eval.tables import format_table
from repro.memmode import KeyValueStore, Scratchpad, VictimCache


def run_memmode_study():
    rng = np.random.default_rng(7)

    pad = Scratchpad(CSB(num_chains=4, num_subarrays=8, num_cols=32))
    data = rng.integers(0, 2**32, size=128)
    pad.write_block(0, data)
    assert pad.read_block(0, 128).tolist() == data.tolist()
    pad_row = ["scratchpad", pad.capacity_words, pad.cycles, "row r/w (1/2 cyc)"]

    kv = KeyValueStore(CSB(num_chains=2, num_subarrays=8, num_cols=32))
    for key in range(200):
        kv.insert(key + 1, (key * 7) % 256)
    hits = sum(kv.lookup(key + 1) == (key * 7) % 256 for key in range(200))
    assert hits == 200
    kv_row = ["key-value", kv.capacity, kv.cycles, "parallel tag search"]

    vc = VictimCache(num_rows=1024, ways=8)
    lines = rng.integers(0, 4096, size=2000) * 64
    for addr in lines:
        if vc.lookup(int(addr)) is None:
            vc.insert(int(addr))
    vc_row = [
        "victim cache", 1024, vc.cycles,
        f"hit rate {vc.stats.hit_rate:.2f}, {vc.index_bits} index bits",
    ]
    return [pad_row, kv_row, vc_row]


def test_memmode_modes(once):
    rows = once(run_memmode_study)
    print()
    print("Section VII — CSB memory-only modes")
    print(format_table(["mode", "capacity", "cycles spent", "notes"], rows))
    kv_capacity = rows[1][1]
    assert kv_capacity == 2 * 32 * 16  # 16 x cols pairs per chain
