"""Serving-tier benchmark: process sharding vs the sequential pool.

Measures the two repro.serve front doors against the sequential
in-process :class:`DevicePool` on an identical job mix:

* the deterministic batch tier (:class:`ServePool`) at 1/2/4 workers —
  wall time and bit-identical-to-sequential checksums;
* the asyncio :class:`Gateway` at 1/2/4 workers — request throughput
  (req/s) and p50/p99 wall latency under a concurrent open-loop client.

Writes ``BENCH_6.json``. BENCH_5 established that worker *threads* run
at 0.85x sequential on a 1-CPU host (GIL + numpy-bound workers);
process sharding is the fix, but it can only show a speedup when the
host has cores to shard across. The scaling ratio is therefore
*recorded* alongside ``cpu_count`` — asserted nowhere — and the
correctness claims (checksums identical, all requests served) are
asserted always.

Run directly (``python benchmarks/bench_serving.py``) for the full
measurement, or via pytest for a smaller smoke-sized version.
"""

import asyncio
import json
import time
from pathlib import Path

import numpy as np

from repro.engine.system import CAPEConfig
from repro.runtime import DevicePool, ExecConfig
from repro.serve import Gateway, JobSpec, ServeConfig, ServePool

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_6.json"

TINY = CAPEConfig(name="tiny", num_chains=64)
WORKER_COUNTS = (1, 2, 4)


def build_specs(n):
    """A deterministic mixed request stream (index is the seed)."""
    specs = []
    for i in range(n):
        kind = i % 3
        if kind == 0:
            specs.append(
                JobSpec(
                    f"dot{i}", "dot",
                    {"x": np.arange(16) + i, "y": np.arange(16) + 1},
                    lanes=16,
                )
            )
        elif kind == 1:
            specs.append(
                JobSpec(
                    f"match{i}", "match_count",
                    {"data": np.arange(32) % 7, "needle": i % 7}, lanes=32,
                )
            )
        else:
            specs.append(
                JobSpec(
                    f"saxpy{i}", "saxpy_sum",
                    {"x": np.arange(16), "y": np.arange(16) + i, "a": 3},
                    lanes=16,
                )
            )
    return specs


def checksum(outputs):
    return hash(tuple(outputs))


def exec_for(workers=1):
    """One ExecConfig drives every tier: worker count for the process
    shards, superplans fused on the bit-plane mirrors."""
    return ExecConfig(workers=workers, superplan="auto")


def run_sequential(specs, configs):
    pool = DevicePool(configs, exec=exec_for())
    jobs = pool.submit_stream(
        [s.to_job() for s in specs], interarrival_cycles=10.0
    )
    start = time.perf_counter()
    pool.run()
    elapsed = time.perf_counter() - start
    return elapsed, [j.result.output for j in jobs]


def run_serve_pool(specs, configs, workers):
    pool = ServePool(configs, exec=exec_for(workers))
    jobs = pool.submit_specs(specs, interarrival_cycles=10.0)
    start = time.perf_counter()
    pool.run()
    elapsed = time.perf_counter() - start
    return elapsed, [j.result.output for j in jobs]


def run_gateway(specs, configs, workers):
    async def main():
        cfg = ServeConfig(
            configs=tuple(configs), max_queue=max(64, len(specs)),
        )
        async with Gateway(cfg, exec=exec_for(workers)) as gateway:
            start = time.perf_counter()
            results = await asyncio.gather(
                *(gateway.submit_retrying(spec) for spec in specs)
            )
            elapsed = time.perf_counter() - start
            return elapsed, results, gateway.report()

    elapsed, results, report = asyncio.run(main())
    return {
        "wall_s": round(elapsed, 4),
        "req_per_s": round(len(specs) / elapsed, 1),
        "p50_latency_s": round(report.latency_percentile(50), 6),
        "p99_latency_s": round(report.latency_percentile(99), 6),
        "completed": report.completed,
        "outputs": [r.output for r in results],
    }


def run_benchmark(num_requests=120):
    import os

    configs = [TINY, TINY, TINY, TINY]
    specs = build_specs(num_requests)

    seq_wall, seq_outputs = run_sequential(specs, configs)
    seq_checksum = checksum(seq_outputs)

    batch_tiers = {}
    for workers in WORKER_COUNTS:
        wall, outputs = run_serve_pool(specs, configs, workers)
        batch_tiers[workers] = {
            "wall_s": round(wall, 4),
            "req_per_s": round(num_requests / wall, 1),
            "checksum_identical_to_sequential": checksum(outputs)
            == seq_checksum,
        }

    gateway_tiers = {}
    gw_checksums_ok = True
    for workers in WORKER_COUNTS:
        tier = run_gateway(specs, configs, workers)
        gw_checksums_ok &= checksum(tier.pop("outputs")) == seq_checksum
        gateway_tiers[workers] = tier

    scaling = round(
        gateway_tiers[4]["req_per_s"] / gateway_tiers[1]["req_per_s"], 2
    )
    return {
        "benchmark": "repro.serve process-sharded serving vs sequential pool",
        "cpu_count": os.cpu_count(),
        "requests": num_requests,
        "devices": len(configs),
        "sequential": {
            "wall_s": round(seq_wall, 4),
            "req_per_s": round(num_requests / seq_wall, 1),
        },
        "serve_pool": {str(k): v for k, v in batch_tiers.items()},
        "gateway": {str(k): v for k, v in gateway_tiers.items()},
        "gateway_checksums_identical": gw_checksums_ok,
        "scaling_workers4_vs_1": scaling,
        "note": (
            "scaling is recorded, not asserted: on a 1-CPU host process "
            "sharding pays IPC overhead with no cores to shard across "
            "(same wall as BENCH_5's thread finding); correctness "
            "(identical checksums, all requests served) is asserted "
            "always"
        ),
    }


def test_bench_serving():
    payload = run_benchmark(num_requests=45)
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(json.dumps(payload, indent=2))
    for tier in payload["serve_pool"].values():
        assert tier["checksum_identical_to_sequential"]
    assert payload["gateway_checksums_identical"]
    for tier in payload["gateway"].values():
        assert tier["completed"] == payload["requests"]


if __name__ == "__main__":
    payload = run_benchmark()
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"wrote {BENCH_JSON}")
