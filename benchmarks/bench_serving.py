"""Serving-tier benchmark: process sharding vs the sequential pool.

Measures the two repro.serve front doors against the sequential
in-process :class:`DevicePool` on an identical job mix:

* the deterministic batch tier (:class:`ServePool`) at 1/2/4 workers —
  wall time and bit-identical-to-sequential checksums;
* the asyncio :class:`Gateway` at 1/2/4 workers — request throughput
  (req/s) and p50/p99 wall latency under a concurrent open-loop client.

Writes ``BENCH_6.json``. BENCH_5 established that worker *threads* run
at 0.85x sequential on a 1-CPU host (GIL + numpy-bound workers);
process sharding is the fix, but it can only show a speedup when the
host has cores to shard across. The scaling ratio is therefore
*recorded* alongside ``cpu_count`` — asserted nowhere — and the
correctness claims (checksums identical, all requests served) are
asserted always.

Run directly (``python benchmarks/bench_serving.py``) for the full
measurement, or via pytest for a smaller smoke-sized version.

**BENCH_10 — the wire sweep.** A second benchmark sweeps request
payload size (small/medium/large int64 arrays) through the gateway
under both data planes: ``wire="pickle"`` (everything inline on the
pipe) and ``wire="shm"`` plus a micro-batching window (payloads cross
as shared-memory descriptors, each dispatch round rides one frame).
Every result is checked against a numpy-computed expectation, so the
speedup claim and the bit-identity claim come from the same run.
Writes ``BENCH_10.json``.
"""

import asyncio
import json
import time
from pathlib import Path

import numpy as np

from repro.engine.system import CAPEConfig
from repro.runtime import DevicePool, ExecConfig
from repro.serve import Gateway, JobSpec, ServeConfig, ServePool, TenantQuota
from repro.serve.spec import KERNELS, register_kernel

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_6.json"
BENCH10_JSON = Path(__file__).resolve().parent.parent / "BENCH_10.json"

TINY = CAPEConfig(name="tiny", num_chains=64)
WORKER_COUNTS = (1, 2, 4)

#: The wire sweep's payload sizes, in int64 elements (8 bytes each).
PAYLOAD_SIZES = {"small": 1024, "medium": 65536, "large": 1_000_000}

if "wire_probe" not in KERNELS:  # survive double import (pytest + path)

    @register_kernel("wire_probe")
    def _wire_probe(system, payload):
        """Device-light, payload-heavy: the wire-bound serving shape.

        The device runs one associative search over the leading slice
        (constant work however large the request), while the checksum
        covers the *whole* array — so a correct answer proves the full
        payload crossed the wire intact, whichever data plane carried
        it.
        """
        data = np.asarray(payload["data"], dtype=np.int64)
        head = data[: int(payload["head"])]
        needle = int(payload["needle"])
        system.vsetvl(len(head))
        addr = 0x1000
        system.memory.write_words(addr, head)
        system.vle(1, addr)
        system.vmseq_vx(2, 1, needle)
        matches = int(system.vmask_popcount(2))
        checksum = int(np.int64(data.sum()) & 0x7FFFFFFF)
        return (checksum, matches)


def build_wire_specs(n, elements):
    """``n`` deterministic wire_probe requests of ``elements`` int64s."""
    specs = []
    expected = []
    for i in range(n):
        data = (np.arange(elements, dtype=np.int64) * 31 + i) % 1013
        needle = i % 7
        specs.append(
            JobSpec(
                f"wire{i}",
                "wire_probe",
                {"data": data, "head": 64, "needle": needle},
                lanes=64,
            )
        )
        expected.append(
            (
                int(np.int64(data.sum()) & 0x7FFFFFFF),
                int(np.count_nonzero(data[:64] == needle)),
            )
        )
    return specs, expected


def build_specs(n):
    """A deterministic mixed request stream (index is the seed)."""
    specs = []
    for i in range(n):
        kind = i % 3
        if kind == 0:
            specs.append(
                JobSpec(
                    f"dot{i}", "dot",
                    {"x": np.arange(16) + i, "y": np.arange(16) + 1},
                    lanes=16,
                )
            )
        elif kind == 1:
            specs.append(
                JobSpec(
                    f"match{i}", "match_count",
                    {"data": np.arange(32) % 7, "needle": i % 7}, lanes=32,
                )
            )
        else:
            specs.append(
                JobSpec(
                    f"saxpy{i}", "saxpy_sum",
                    {"x": np.arange(16), "y": np.arange(16) + i, "a": 3},
                    lanes=16,
                )
            )
    return specs


def checksum(outputs):
    return hash(tuple(outputs))


def exec_for(workers=1):
    """One ExecConfig drives every tier: worker count for the process
    shards, superplans fused on the bit-plane mirrors."""
    return ExecConfig(workers=workers, superplan="auto")


def run_sequential(specs, configs):
    pool = DevicePool(configs, exec=exec_for())
    jobs = pool.submit_stream(
        [s.to_job() for s in specs], interarrival_cycles=10.0
    )
    start = time.perf_counter()
    pool.run()
    elapsed = time.perf_counter() - start
    return elapsed, [j.result.output for j in jobs]


def run_serve_pool(specs, configs, workers):
    pool = ServePool(configs, exec=exec_for(workers))
    jobs = pool.submit_specs(specs, interarrival_cycles=10.0)
    start = time.perf_counter()
    pool.run()
    elapsed = time.perf_counter() - start
    return elapsed, [j.result.output for j in jobs]


def run_gateway(specs, configs, workers):
    async def main():
        cfg = ServeConfig(
            configs=tuple(configs), max_queue=max(64, len(specs)),
        )
        async with Gateway(cfg, exec=exec_for(workers)) as gateway:
            start = time.perf_counter()
            results = await asyncio.gather(
                *(gateway.submit_retrying(spec) for spec in specs)
            )
            elapsed = time.perf_counter() - start
            return elapsed, results, gateway.report()

    elapsed, results, report = asyncio.run(main())
    return {
        "wall_s": round(elapsed, 4),
        "req_per_s": round(len(specs) / elapsed, 1),
        "p50_latency_s": round(report.latency_percentile(50), 6),
        "p99_latency_s": round(report.latency_percentile(99), 6),
        "completed": report.completed,
        "outputs": [r.output for r in results],
    }


def run_benchmark(num_requests=120):
    import os

    configs = [TINY, TINY, TINY, TINY]
    specs = build_specs(num_requests)

    seq_wall, seq_outputs = run_sequential(specs, configs)
    seq_checksum = checksum(seq_outputs)

    batch_tiers = {}
    for workers in WORKER_COUNTS:
        wall, outputs = run_serve_pool(specs, configs, workers)
        batch_tiers[workers] = {
            "wall_s": round(wall, 4),
            "req_per_s": round(num_requests / wall, 1),
            "checksum_identical_to_sequential": checksum(outputs)
            == seq_checksum,
        }

    gateway_tiers = {}
    gw_checksums_ok = True
    for workers in WORKER_COUNTS:
        tier = run_gateway(specs, configs, workers)
        gw_checksums_ok &= checksum(tier.pop("outputs")) == seq_checksum
        gateway_tiers[workers] = tier

    scaling = round(
        gateway_tiers[4]["req_per_s"] / gateway_tiers[1]["req_per_s"], 2
    )
    return {
        "benchmark": "repro.serve process-sharded serving vs sequential pool",
        "cpu_count": os.cpu_count(),
        "requests": num_requests,
        "devices": len(configs),
        "sequential": {
            "wall_s": round(seq_wall, 4),
            "req_per_s": round(num_requests / seq_wall, 1),
        },
        "serve_pool": {str(k): v for k, v in batch_tiers.items()},
        "gateway": {str(k): v for k, v in gateway_tiers.items()},
        "gateway_checksums_identical": gw_checksums_ok,
        "scaling_workers4_vs_1": scaling,
        "note": (
            "scaling is recorded, not asserted: on a 1-CPU host process "
            "sharding pays IPC overhead with no cores to shard across "
            "(same wall as BENCH_5's thread finding); correctness "
            "(identical checksums, all requests served) is asserted "
            "always"
        ),
    }


def run_wire_mode(specs, expected, mode, window_s, workers=2):
    """Serve ``specs`` through a gateway under one data-plane mode."""

    async def main():
        # Admit the whole sweep at once: the point is to measure the
        # wire, not the admission backoff policy.
        bound = max(64, len(specs))
        cfg = ServeConfig(
            configs=(TINY,) * 4,
            max_queue=bound,
            default_quota=TenantQuota(max_pending=bound),
        )
        wire_exec = ExecConfig(
            workers=workers,
            superplan="auto",
            wire=mode,
            batch_window_s=window_s,
        )
        async with Gateway(cfg, exec=wire_exec) as gateway:
            start = time.perf_counter()
            results = await asyncio.gather(
                *(gateway.submit_retrying(spec) for spec in specs)
            )
            elapsed = time.perf_counter() - start
            report = gateway.report()
            stats = dict(gateway.wire_stats)
            return elapsed, results, report, stats

    elapsed, results, report, stats = asyncio.run(main())
    outputs = [r.output for r in results]
    frames = stats.get("frames", 0)
    return {
        "wall_s": round(elapsed, 4),
        "req_per_s": round(len(specs) / elapsed, 1),
        "p50_latency_s": round(report.latency_percentile(50), 6),
        "p99_latency_s": round(report.latency_percentile(99), 6),
        "completed": report.completed,
        "payload_bytes_out": report.payload_bytes_out,
        "payload_bytes_in": report.payload_bytes_in,
        "wire_frames": frames,
        "jobs_per_frame": round(
            stats.get("batched_jobs", 0) / frames, 2
        ) if frames else 0.0,
        "shm_hits": stats.get("shm_hits", 0),
        "pickle_fallbacks": stats.get("fallbacks", 0),
        "outputs_match_expected": outputs == expected,
    }


def run_wire_compare(elements, requests, workers=2, window_s=0.002):
    """One payload-size point: pickle vs shm+batched on the same load."""
    specs, expected = build_wire_specs(requests, elements)
    tiers = {
        "pickle": run_wire_mode(specs, expected, "pickle", 0.0, workers),
        "shm": run_wire_mode(specs, expected, "shm", window_s, workers),
    }
    return {
        "elements": elements,
        "payload_bytes": elements * 8,
        "requests": requests,
        **tiers,
        "speedup_shm_vs_pickle": round(
            tiers["shm"]["req_per_s"] / tiers["pickle"]["req_per_s"], 2
        ),
        "checksums_identical": (
            tiers["pickle"]["outputs_match_expected"]
            and tiers["shm"]["outputs_match_expected"]
        ),
    }


def run_wire_benchmark(request_counts=None):
    """The BENCH_10 sweep: every payload size, both data planes."""
    import os

    counts = request_counts or {"small": 120, "medium": 60, "large": 24}
    payloads = {
        label: run_wire_compare(PAYLOAD_SIZES[label], counts[label])
        for label in PAYLOAD_SIZES
    }
    return {
        "benchmark": (
            "serving-tier data plane: shm descriptors + batched frames "
            "vs inline pickle"
        ),
        "cpu_count": os.cpu_count(),
        "workers": 2,
        "devices": 4,
        "payloads": payloads,
        "large_speedup_shm_vs_pickle": payloads["large"][
            "speedup_shm_vs_pickle"
        ],
        "all_checksums_identical": all(
            p["checksums_identical"] for p in payloads.values()
        ),
        "note": (
            "wire_probe does constant device work per request, so the "
            "sweep isolates the wire: at small payloads the planes tie, "
            "at large ones the pickle plane pays serialize+copy per "
            "request while shm ships descriptors. checksums are "
            "numpy-computed expectations, asserted per request in both "
            "modes"
        ),
    }


def test_bench_serving():
    payload = run_benchmark(num_requests=45)
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(json.dumps(payload, indent=2))
    for tier in payload["serve_pool"].values():
        assert tier["checksum_identical_to_sequential"]
    assert payload["gateway_checksums_identical"]
    for tier in payload["gateway"].values():
        assert tier["completed"] == payload["requests"]


def test_bench_wire():
    """Smoke-sized wire sweep: correctness asserted, speedup recorded.

    The ≥1.5x large-payload speedup is asserted by the live smoke in
    ``scripts/check.sh`` (full-sized requests); this keeps the pytest
    tier fast and timing-tolerant.
    """
    payload = run_wire_benchmark(
        request_counts={"small": 12, "medium": 8, "large": 6}
    )
    print()
    print(json.dumps(payload, indent=2))
    assert payload["all_checksums_identical"]
    for point in payload["payloads"].values():
        for mode in ("pickle", "shm"):
            assert point[mode]["completed"] == point["requests"]
            assert point[mode]["payload_bytes_out"] > 0
            assert point[mode]["payload_bytes_in"] > 0
    large_shm = payload["payloads"]["large"]["shm"]
    assert large_shm["shm_hits"] > 0


if __name__ == "__main__":
    payload = run_benchmark()
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"wrote {BENCH_JSON}")
    wire_payload = run_wire_benchmark()
    BENCH10_JSON.write_text(json.dumps(wire_payload, indent=2) + "\n")
    print(json.dumps(wire_payload, indent=2))
    print(f"wrote {BENCH10_JSON}")
