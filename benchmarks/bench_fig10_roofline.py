"""Figure 10: roofline study of CAPE32k vs CAPE131k.

Places the Phoenix applications in roofline space for both design points
and checks the paper's observations: constant-intensity apps keep their
intensity and move up toward the memory roof with the larger CSB;
variable-intensity apps stay far below the rooflines.
"""

from repro.engine.system import CAPE131K, CAPE32K
from repro.eval.roofline import Roofline
from repro.eval.tables import format_table
from repro.workloads.phoenix import Histogram, KMeans, LinearRegression, PCA, WordCount

APPS = [LinearRegression, Histogram, KMeans, PCA, WordCount]


def build_roofline_study():
    study = {}
    for config in (CAPE32K, CAPE131K):
        roofline = Roofline(config)
        study[config.name] = (
            roofline,
            [roofline.measure(cls) for cls in APPS],
        )
    return study


def test_fig10_roofline(once):
    study = once(build_roofline_study)
    print()
    for name, (roofline, points) in study.items():
        print(
            f"Figure 10 — {name}: compute roof "
            f"{roofline.compute_roof_ops_per_s / 1e9:.1f} Gop/s, "
            f"ridge at {roofline.ridge_intensity():.2f} op/B"
        )
        print(
            format_table(
                ["app", "intensity (op/B)", "throughput (Gop/s)", "bound"],
                [
                    [
                        p.name,
                        round(p.intensity_ops_per_byte, 3),
                        round(p.throughput_ops_per_s / 1e9, 2),
                        p.bound,
                    ]
                    for p in points
                ],
            )
        )
    small = {p.name: p for p in study["CAPE32k"][1]}
    big = {p.name: p for p in study["CAPE131k"][1]}
    # Constant-intensity apps gain throughput with the larger CSB...
    assert big["hist"].throughput_ops_per_s > small["hist"].throughput_ops_per_s
    assert big["lreg"].throughput_ops_per_s > small["lreg"].throughput_ops_per_s
    # ...while pca's position is essentially fixed (no replica load).
    ratio = big["pca"].throughput_ops_per_s / small["pca"].throughput_ops_per_s
    assert 0.8 < ratio < 1.3
    # kmeans *changes intensity* when its dataset becomes CSB-resident
    # (loads drop out of the denominator) and leaps toward the compute
    # roof — the paper's Section VI-E observation.
    assert big["kmeans"].intensity_ops_per_byte > 3 * small["kmeans"].intensity_ops_per_byte
    assert big["kmeans"].throughput_ops_per_s > 2 * small["kmeans"].throughput_ops_per_s
