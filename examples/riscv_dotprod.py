"""Dot product in RISC-V vector assembly, CAPE-style (Section V-G).

Shows the two CAPE-specific idioms on real assembly:

* the *replica vector load* ``vlrw.v`` fills a whole register from one
  small chunk of memory, and
* ``vredsum.vs`` reduces all lanes bit-serially through the tag bits and
  the global tree — roughly 8x cheaper than an element-wise add.

The program is assembled to genuine 32-bit RISC-V encodings (OP-V major
opcode for the vector instructions, custom-0 for ``vlrw.v``), decoded
back, and executed on the CAPE system model — under a live
:class:`~repro.api.Observer`, so the run leaves a Chrome/Perfetto trace
(``riscv_dotprod.trace.json``, open at https://ui.perfetto.dev) with one
span per vector instruction (interpreter), per VCU dispatch (microcode),
and per program run (runtime). See docs/OBSERVABILITY.md.

Run:  python examples/riscv_dotprod.py
"""

from pathlib import Path

import numpy as np

from repro.api import CAPE32K, Device, Machine, Observer
from repro.isa.assembler import assemble

PROGRAM = """
    # a0 = n, a1 = &x, a2 = &weights (chunk of 8), a3 = &result
    li a4, 8              # replica chunk length
    li a5, 0              # running sum lives in x15
loop:
    vsetvli t0, a0, e32
    vle32.v v1, (a1)      # x tile
    vlrw.v  v2, a2, a4    # weights replicated along the register
    vmul.vv v3, v1, v2
    vmv.v.x v0, zero
    vredsum.vs v4, v3, v0 # horizontal sum of the whole tile
    # accumulate v4[0] via the scalar side (stored to result slot)
    sub a0, a0, t0
    slli t1, t0, 2
    add a1, a1, t1
    bne a0, zero, loop
    ecall
"""


def main():
    observer = Observer()
    device = Device(CAPE32K, observer=observer)
    n = 40_000
    rng = np.random.default_rng(7)
    x = rng.integers(0, 100, size=n)
    weights = rng.integers(1, 9, size=8)
    device.write_words(0x100000, x)
    device.write_words(0x200000, weights)

    machine = Machine(PROGRAM, device.system)
    machine.x[10] = n          # a0
    machine.x[11] = 0x100000   # a1
    machine.x[12] = 0x200000   # a2
    result = machine.run()

    # Each tile's partial landed in v4[0]; the interpreter models the
    # accumulate on the CP. Recompute the architected total:
    expected = int((x * np.tile(weights, n // 8 + 1)[:n]).sum())
    print(f"weighted dot product of {n:,} elements, 8-element weight kernel")
    print(f"  expected (numpy):    {expected:,}")
    print(f"  vector instructions: {result.vector_instructions}")
    print(f"  cycles:              {result.cycles:,.0f} "
          f"({result.seconds * 1e6:.1f} us)")
    print(f"  words first encoded: "
          f"{[hex(w) for w in assemble(PROGRAM)[:4]]} ...")
    print()
    print("vlrw.v moved 32 bytes of weights per tile instead of 128 KiB —")
    print("the replica load keeps matrix-style kernels at full utilisation.")

    trace_path = Path(__file__).with_name("riscv_dotprod.trace.json")
    observer.tracer.write_chrome(trace_path)
    layers = {
        cat: sum(1 for _ in observer.tracer.spans(cat))
        for cat in ("interpreter", "microcode", "runtime")
    }
    print()
    print(f"trace written to {trace_path.name} (open at ui.perfetto.dev):")
    print("  " + ", ".join(f"{count} {cat} spans" for cat, count in layers.items()))
    print()
    print(device.stats.summary())


if __name__ == "__main__":
    main()
