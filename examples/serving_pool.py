"""Serving a mixed job stream on a multi-tenant CAPE device pool.

The single-shot simulator becomes a servable engine: 22 jobs — Phoenix
applications and microbenchmarks at mixed sizes, priorities, and
deadlines — arrive over time and are sharded across three devices (two
CAPE32k, one CAPE131k). Placement is capacity-aware best-fit, queues
are reordered shortest-job-first, and idle devices steal work.

One job carries 200,000 lanes of live state — more than even CAPE131k's
131,072-lane CSB — and is served through context spill/restore: the
register file is time-shared between segments, with every spill's HBM
cycles and energy charged to the job. Every job's output is validated
against its numpy golden model before the telemetry is reported.

The pool publishes into an :class:`~repro.api.Observer`: every device's
engine counters are labelled ``device=...``, the scheduler counts
arrivals/completions/steals, and each job leaves a span on the runtime
timeline — the same numbers the telemetry report aggregates, but live
and queryable (see docs/OBSERVABILITY.md).

With ``--chaos <seed>`` the same stream is served through a seeded
fault storm (see docs/FAULTS.md): one CAPE32k shard dies mid-stream and
the other suffers repeated HBM load corruption — enough to quarantine
it. The pool retries, quarantines, re-places, and still completes every
job with validated results; the printed report gains the self-healing
ledger and the per-device injection summary.

Run:  python examples/serving_pool.py [--chaos 0xCA9E]
"""

import argparse

import numpy as np

from repro.api import (
    CAPE131K,
    CAPE32K,
    DevicePool,
    DeviceKill,
    ExecConfig,
    FaultPlan,
    Job,
    Observer,
    SegmentedJob,
    TransferFault,
)
from repro.eval.serving import serving_report
from repro.workloads.micro import (
    Dotprod,
    IdxSearch,
    MemcpyBench,
    Saxpy,
    VVAdd,
    VVMul,
)
from repro.workloads.phoenix import (
    Histogram,
    KMeans,
    LinearRegression,
    MatMul,
    StringMatch,
    WordCount,
)

#: Two small shards plus one large for capacity-hungry jobs.
POOL = (CAPE32K, CAPE32K, CAPE131K)

#: Cycles between job arrivals (a steady submission stream).
INTERARRIVAL = 500.0


def oversized_job() -> SegmentedJob:
    """An iterative accumulate over 200k resident lanes: y = 3a.

    The live registers (input + accumulator) exceed every device, so
    the runtime partitions the lanes into MAX_VL segments and
    spills/restores the register file between them on each of the three
    passes — the capacity cliff served instead of failing.
    """
    n = 200_000
    rng = np.random.default_rng(99)
    a = rng.integers(0, 1 << 16, size=n).astype(np.int64)
    base = 0x0010_0000

    def segment(system, offset, vl, pass_index):
        if pass_index == 0:
            system.memory.write_words(base + 4 * offset, a[offset : offset + vl])
            system.vle(1, base + 4 * offset)  # input slice
            system.vmv_vx(2, 0)  # accumulator
        system.vadd(2, 2, 1)
        if pass_index == 2:
            return int(system.vredsum(2, signed=False))

    return SegmentedJob(
        "3a-accum",
        total_lanes=n,
        segment_body=segment,
        live_vregs=(1, 2),
        passes=3,
        finalize=sum,
        golden=int((3 * a).sum()),
        priority=1,
    )


def make_jobs():
    """22 mixed jobs: micro + Phoenix + one oversized spill-served."""
    jobs = [
        # A burst of streaming microbenchmarks at mixed sizes.
        Job.from_workload(VVAdd(n=1 << 14, seed=1)),
        Job.from_workload(VVMul(n=1 << 14, seed=2)),
        Job.from_workload(Saxpy(n=1 << 14, seed=3)),
        Job.from_workload(MemcpyBench(n=1 << 15, seed=4)),
        Job.from_workload(Dotprod(n=1 << 14, seed=5)),
        Job.from_workload(IdxSearch(n=1 << 14, seed=6)),
        Job.from_workload(VVAdd(n=1 << 16, seed=7)),
        Job.from_workload(Saxpy(n=1 << 16, seed=8)),
        Job.from_workload(MemcpyBench(n=1 << 16, seed=9)),
        Job.from_workload(Dotprod(n=1 << 15, seed=10)),
        # Latency-sensitive interactive lookups: high priority + deadline.
        Job.from_workload(
            IdxSearch(n=1 << 13, seed=11), priority=2, deadline_cycles=60_000
        ),
        Job.from_workload(
            IdxSearch(n=1 << 13, seed=12), priority=2, deadline_cycles=60_000
        ),
        # Phoenix applications (scaled to the simulation budget).
        Job.from_workload(Histogram(n=1 << 15)),
        Job.from_workload(LinearRegression(n=1 << 15)),
        Job.from_workload(MatMul(m=16, n=512, p=16), lanes=16 * 512),
        Job.from_workload(StringMatch(n=1 << 14)),
        Job.from_workload(WordCount(n=1 << 14)),
        Job.from_workload(
            KMeans(points=40_000, dims=4, k=4, iterations=2),
            lanes=40_000,
            resident=True,  # placement keeps the dataset CSB-resident
        ),
        # Background batch work at low priority.
        Job.from_workload(VVAdd(n=1 << 15, seed=13), priority=-1),
        Job.from_workload(VVMul(n=1 << 15, seed=14), priority=-1),
        Job.from_workload(Histogram(n=1 << 14, seed=15), priority=-1),
        # The capacity-cliff job, spill-served on the big device.
        oversized_job(),
    ]
    return jobs


def chaos_plan(seed: int) -> FaultPlan:
    """A seeded storm aimed at the two small shards.

    Device 0 (CAPE32k) dies mid-stream; device 1 (CAPE32k) suffers
    repeated load corruption — enough consecutive failures to trip the
    quarantine threshold. The CAPE131k stays healthy so the
    capacity-hungry jobs always have a home; everything else about the
    storm (when, which element, which bit) comes from the seed.
    """
    rng = np.random.default_rng(seed)
    faults = [DeviceKill(at_cycle=float(rng.integers(4_000, 12_000)),
                         device=0)]
    # Spread the corruption over distinct transfer windows so successive
    # jobs on the flaky shard keep failing (tripping its quarantine)
    # instead of one job absorbing every flip.
    for i in range(8):
        faults.append(
            TransferFault(
                kind="load",
                at_transfer=3 * i + int(rng.integers(1, 4)),
                element=int(rng.integers(0, 256)),
                bit=int(rng.integers(0, 32)),
                device=1,
            )
        )
    return FaultPlan(faults=tuple(faults), seed=seed)


def run_pool(policy: str, observer: Observer = None, fault_plan=None):
    healing = dict(failure_threshold=2) if fault_plan is not None else {}
    # One ExecConfig carries the execution knobs; scheduling policy,
    # observability, and fault plans stay per-call arguments. Superplans
    # in "auto" fuse kernels on clean bit-plane devices and quietly stand
    # down wherever the fault storm attaches an injector.
    pool = DevicePool(
        POOL, policy=policy, observer=observer, fault_plan=fault_plan,
        exec=ExecConfig(superplan="auto"),
        **healing,
    )
    pool.submit_stream(make_jobs(), interarrival_cycles=INTERARRIVAL)
    return pool, pool.run()


def chaos_section(pool, report, observer):
    """Print the healing ledger behind a chaos run."""
    print()
    print("chaos: seeded fault storm served through self-healing")
    metrics = observer.metrics
    print(
        f"  injected: {metrics.total('faults.injected'):.0f} faults, "
        f"retries: {report.retries}, quarantines: {report.quarantines}, "
        f"device deaths: {report.device_deaths}"
    )
    for device in pool.devices:
        inj = device.injector
        if inj is None or not inj.injected:
            continue
        state = device.health.state.name.lower()
        kinds = ", ".join(
            f"{kind} x{count}" for kind, count in sorted(inj.injected.items())
        )
        print(f"  {device.name}: {kinds} ({state})")
    retried = [r for r in report.jobs if r.attempts > 0]
    if retried:
        worst = max(retried, key=lambda r: r.attempts)
        print(
            f"  {len(retried)} jobs re-placed after failures "
            f"(worst: {worst.name!r}, {worst.attempts} retries) — "
            f"all outputs still validated"
        )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--chaos",
        metavar="SEED",
        type=lambda s: int(s, 0),
        default=None,
        help="serve the stream through a seeded fault storm "
             "(e.g. --chaos 0xCA9E) and print the self-healing ledger",
    )
    args = parser.parse_args()
    plan = chaos_plan(args.chaos) if args.chaos is not None else None

    observer = Observer()
    pool, report = run_pool("sjf", observer=observer, fault_plan=plan)
    title = "CAPE device pool — 22 jobs, 2x CAPE32k + 1x CAPE131k, SJF"
    if plan is not None:
        title += f" — chaos seed {args.chaos:#x}"
    print(serving_report(report, title=title))

    if plan is not None:
        chaos_section(pool, report, observer)

    failed = [j for j in report.jobs if not j.validated]
    assert not failed, f"jobs failed golden validation: {failed}"
    spilled = [j for j in report.jobs if j.spills]
    assert spilled, "expected the oversized job to be spill-served"
    big = spilled[0]
    print()
    print(
        f"capacity cliff served: {big.name!r} ({big.lanes:,} lanes > "
        f"{max(c.max_vl for c in POOL):,}) ran with {big.spills} spills / "
        f"{big.restores} restores instead of failing"
    )

    metrics = observer.metrics
    print()
    print("observer counters (runtime + per-device engine):")
    print(
        f"  jobs arrived/done: "
        f"{metrics.total('runtime.jobs', event='arrived'):.0f}/"
        f"{metrics.total('runtime.jobs', event='done'):.0f}, "
        f"steals: {metrics.total('runtime.steals'):.0f}, "
        f"spills: {metrics.total('runtime.spills'):.0f} "
        f"({metrics.total('runtime.spill_bytes'):,.0f} bytes)"
    )
    for labels, counter in metrics.series("engine.cycles"):
        if labels.get("kind") == "compute":
            print(
                f"  {labels['device']}: {counter.value:,.0f} compute cycles"
            )
    job_spans = sum(1 for _ in observer.tracer.spans("runtime"))
    print(f"  runtime timeline: {job_spans} spans (jobs + program scopes)")

    _, fifo = run_pool("fifo")
    print()
    print(
        f"policy comparison: mean turnaround fifo "
        f"{fifo.mean_turnaround_cycles():,.0f} cycles vs sjf "
        f"{report.mean_turnaround_cycles():,.0f} cycles"
    )


if __name__ == "__main__":
    main()
