"""Serving a mixed job stream on a multi-tenant CAPE device pool.

The single-shot simulator becomes a servable engine: 22 jobs — Phoenix
applications and microbenchmarks at mixed sizes, priorities, and
deadlines — arrive over time and are sharded across three devices (two
CAPE32k, one CAPE131k). Placement is capacity-aware best-fit, queues
are reordered shortest-job-first, and idle devices steal work.

One job carries 200,000 lanes of live state — more than even CAPE131k's
131,072-lane CSB — and is served through context spill/restore: the
register file is time-shared between segments, with every spill's HBM
cycles and energy charged to the job. Every job's output is validated
against its numpy golden model before the telemetry is reported.

The pool publishes into an :class:`~repro.api.Observer`: every device's
engine counters are labelled ``device=...``, the scheduler counts
arrivals/completions/steals, and each job leaves a span on the runtime
timeline — the same numbers the telemetry report aggregates, but live
and queryable (see docs/OBSERVABILITY.md).

Run:  python examples/serving_pool.py
"""

import numpy as np

from repro.api import (
    CAPE131K,
    CAPE32K,
    DevicePool,
    Job,
    Observer,
    SegmentedJob,
)
from repro.eval.serving import serving_report
from repro.workloads.micro import (
    Dotprod,
    IdxSearch,
    MemcpyBench,
    Saxpy,
    VVAdd,
    VVMul,
)
from repro.workloads.phoenix import (
    Histogram,
    KMeans,
    LinearRegression,
    MatMul,
    StringMatch,
    WordCount,
)

#: Two small shards plus one large for capacity-hungry jobs.
POOL = (CAPE32K, CAPE32K, CAPE131K)

#: Cycles between job arrivals (a steady submission stream).
INTERARRIVAL = 500.0


def oversized_job() -> SegmentedJob:
    """An iterative accumulate over 200k resident lanes: y = 3a.

    The live registers (input + accumulator) exceed every device, so
    the runtime partitions the lanes into MAX_VL segments and
    spills/restores the register file between them on each of the three
    passes — the capacity cliff served instead of failing.
    """
    n = 200_000
    rng = np.random.default_rng(99)
    a = rng.integers(0, 1 << 16, size=n).astype(np.int64)
    base = 0x0010_0000

    def segment(system, offset, vl, pass_index):
        if pass_index == 0:
            system.memory.write_words(base + 4 * offset, a[offset : offset + vl])
            system.vle(1, base + 4 * offset)  # input slice
            system.vmv_vx(2, 0)  # accumulator
        system.vadd(2, 2, 1)
        if pass_index == 2:
            return int(system.vredsum(2, signed=False))

    return SegmentedJob(
        "3a-accum",
        total_lanes=n,
        segment_body=segment,
        live_vregs=(1, 2),
        passes=3,
        finalize=sum,
        golden=int((3 * a).sum()),
        priority=1,
    )


def make_jobs():
    """22 mixed jobs: micro + Phoenix + one oversized spill-served."""
    jobs = [
        # A burst of streaming microbenchmarks at mixed sizes.
        Job.from_workload(VVAdd(n=1 << 14, seed=1)),
        Job.from_workload(VVMul(n=1 << 14, seed=2)),
        Job.from_workload(Saxpy(n=1 << 14, seed=3)),
        Job.from_workload(MemcpyBench(n=1 << 15, seed=4)),
        Job.from_workload(Dotprod(n=1 << 14, seed=5)),
        Job.from_workload(IdxSearch(n=1 << 14, seed=6)),
        Job.from_workload(VVAdd(n=1 << 16, seed=7)),
        Job.from_workload(Saxpy(n=1 << 16, seed=8)),
        Job.from_workload(MemcpyBench(n=1 << 16, seed=9)),
        Job.from_workload(Dotprod(n=1 << 15, seed=10)),
        # Latency-sensitive interactive lookups: high priority + deadline.
        Job.from_workload(
            IdxSearch(n=1 << 13, seed=11), priority=2, deadline_cycles=60_000
        ),
        Job.from_workload(
            IdxSearch(n=1 << 13, seed=12), priority=2, deadline_cycles=60_000
        ),
        # Phoenix applications (scaled to the simulation budget).
        Job.from_workload(Histogram(n=1 << 15)),
        Job.from_workload(LinearRegression(n=1 << 15)),
        Job.from_workload(MatMul(m=16, n=512, p=16), lanes=16 * 512),
        Job.from_workload(StringMatch(n=1 << 14)),
        Job.from_workload(WordCount(n=1 << 14)),
        Job.from_workload(
            KMeans(points=40_000, dims=4, k=4, iterations=2),
            lanes=40_000,
            resident=True,  # placement keeps the dataset CSB-resident
        ),
        # Background batch work at low priority.
        Job.from_workload(VVAdd(n=1 << 15, seed=13), priority=-1),
        Job.from_workload(VVMul(n=1 << 15, seed=14), priority=-1),
        Job.from_workload(Histogram(n=1 << 14, seed=15), priority=-1),
        # The capacity-cliff job, spill-served on the big device.
        oversized_job(),
    ]
    return jobs


def run_pool(policy: str, observer: Observer = None):
    pool = DevicePool(POOL, policy=policy, observer=observer)
    pool.submit_stream(make_jobs(), interarrival_cycles=INTERARRIVAL)
    return pool.run()


def main():
    observer = Observer()
    report = run_pool("sjf", observer=observer)
    print(serving_report(
        report,
        title="CAPE device pool — 22 jobs, 2x CAPE32k + 1x CAPE131k, SJF",
    ))

    failed = [j for j in report.jobs if not j.validated]
    assert not failed, f"jobs failed golden validation: {failed}"
    spilled = [j for j in report.jobs if j.spills]
    assert spilled, "expected the oversized job to be spill-served"
    big = spilled[0]
    print()
    print(
        f"capacity cliff served: {big.name!r} ({big.lanes:,} lanes > "
        f"{max(c.max_vl for c in POOL):,}) ran with {big.spills} spills / "
        f"{big.restores} restores instead of failing"
    )

    metrics = observer.metrics
    print()
    print("observer counters (runtime + per-device engine):")
    print(
        f"  jobs arrived/done: "
        f"{metrics.total('runtime.jobs', event='arrived'):.0f}/"
        f"{metrics.total('runtime.jobs', event='done'):.0f}, "
        f"steals: {metrics.total('runtime.steals'):.0f}, "
        f"spills: {metrics.total('runtime.spills'):.0f} "
        f"({metrics.total('runtime.spill_bytes'):,.0f} bytes)"
    )
    for labels, counter in metrics.series("engine.cycles"):
        if labels.get("kind") == "compute":
            print(
                f"  {labels['device']}: {counter.value:,.0f} compute cycles"
            )
    job_spans = sum(1 for _ in observer.tracer.spans("runtime"))
    print(f"  runtime timeline: {job_spans} spans (jobs + program scopes)")

    fifo = run_pool("fifo")
    print()
    print(
        f"policy comparison: mean turnaround fifo "
        f"{fifo.mean_turnaround_cycles():,.0f} cycles vs sjf "
        f"{report.mean_turnaround_cycles():,.0f} cycles"
    )


if __name__ == "__main__":
    main()
