"""CAPE as a tile in a heterogeneous chip (Sections I, III, VII).

Three scenes:

1. a CAPE tile and an out-of-order core tile co-scheduled on the shared
   HBM — compute overlaps, memory contends;
2. an idle CAPE tile reconfigured as a *victim cache* for the core
   tile's L2, recovering capacity misses at a fraction of HBM latency;
3. the same tile switched to *key-value* mode, serving lookups through
   content-addressable searches.

Run:  python examples/tiled_chip.py
"""

import numpy as np

from repro.baseline.trace import Trace, TraceBlock
from repro.api import CAPEConfig
from repro.engine.tile import TiledChip, TileMode, cape_job, core_job
from repro.workloads.micro import Dotprod, VVAdd

CONFIG = CAPEConfig(name="cape-tile", num_chains=1024)


def scene_1_co_schedule():
    print("-- scene 1: co-scheduled compute " + "-" * 26)
    chip = TiledChip(cape_tiles=1, core_tiles=1, cape_config=CONFIG)
    result = chip.co_schedule(
        {
            "cape0": cape_job(lambda: Dotprod(n=1 << 16)),
            "core0": core_job(lambda: VVAdd(n=1 << 16).scalar_trace()),
        }
    )
    for name, seconds in result.per_tile_seconds.items():
        print(f"  {name}: {seconds * 1e6:8.1f} us")
    print(f"  chip makespan: {result.chip_seconds * 1e6:.1f} us "
          f"(memory portions contend on the shared HBM)")


def scene_2_victim_cache():
    print("-- scene 2: CAPE tile as the core's victim cache " + "-" * 10)
    chip = TiledChip(cape_tiles=1, core_tiles=1, cape_config=CONFIG)
    vc = chip.attach_victim_cache("cape0", "core0")
    core = chip.tile("core0")
    # Stream a working set 1.2x the core's L2, then re-touch the lines
    # that were evicted most recently: they are gone from the L2 but
    # still resident in the CAPE tile's 1,024-row victim store.
    l2_lines = core.hierarchy.config.l2_size // 64
    lines = int(l2_lines * 1.2)
    loads = 64 * np.arange(lines, dtype=np.int64)
    core.run(Trace("stream", [TraceBlock("w", loads=loads)]))
    recently_evicted = 64 * np.arange(lines - l2_lines - 512, lines - l2_lines, dtype=np.int64)
    core.run(Trace("retouch", [TraceBlock("w", loads=recently_evicted)]))
    print(f"  victim-cache insertions: {vc.stats.insertions:,}")
    print(f"  victim-cache hits:       {vc.stats.hits:,} "
          f"(each ~{core.hierarchy.VICTIM_HIT_LATENCY} cycles instead of an HBM fill)")


def scene_3_key_value():
    print("-- scene 3: key-value mode " + "-" * 32)
    chip = TiledChip(cape_tiles=1, core_tiles=0, cape_config=CONFIG)
    tile = chip.tile("cape0")
    tile.set_mode(TileMode.KEY_VALUE)
    store = tile.storage
    for key in range(1, 400):
        store.insert(key, key * 11)
    print(f"  capacity {store.capacity:,} pairs; 399 inserted")
    print(f"  lookup(123) -> {store.lookup(123)} via parallel tag search")
    tile.set_mode(TileMode.COMPUTE)
    print("  ...and back to compute mode for the next vector kernel.")


if __name__ == "__main__":
    scene_1_co_schedule()
    scene_2_victim_cache()
    scene_3_key_value()
