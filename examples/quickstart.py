"""Quickstart: CAPE from the bitcells up, in three stops.

1. The paper's Figure 1: an associative *increment* as bit-serial
   search/update pairs on a raw 6T BCAM subarray.
2. A chain-level ``vadd.vv``: the real microcode on bit-sliced operands,
   with its microoperation mix measured (Table I's 8n + 2).
3. A full CAPE system running RISC-V vector assembly through the
   assembler, encoder, and interpreter.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.api import CAPE32K, AssociativeEmulator, Device, Subarray
from repro.assoc import algorithms as alg


def stop_1_figure1_increment():
    print("=" * 64)
    print("1. Figure 1: associative increment on a raw subarray")
    print("=" * 64)
    values = np.array([1, 2, 3, 7], dtype=np.int64)
    sub = Subarray(num_rows=4, num_cols=len(values))  # 3 bit rows + carry
    for r in range(3):
        sub.write_row(r, ((values >> r) & 1).astype(np.uint8))
    alg.increment_figure1(sub, bit_rows=[0, 1, 2], carry_row=3)
    result = sum(sub.read_row(r).astype(np.int64) << r for r in range(3))
    print(f"  before: {values.tolist()}")
    print(f"  after:  {result.tolist()}   (3-bit wraparound: 7 + 1 = 0)")
    print()


def stop_2_chain_level_vadd():
    print("=" * 64)
    print("2. Chain-level vadd.vv: bit-serial truth-table walk")
    print("=" * 64)
    emulator = AssociativeEmulator(num_subarrays=32, num_cols=32)
    rng = np.random.default_rng(42)
    a = rng.integers(0, 1 << 30, size=32)
    b = rng.integers(0, 1 << 30, size=32)
    run = emulator.run("vadd.vv", a, b, width=32)
    assert np.array_equal(np.asarray(run.result), (a + b) & 0xFFFFFFFF)
    print(f"  32 elements x 32 bits added entirely with searches/updates")
    print(f"  measured microoperations: {run.stats.total_microops}"
          f"  (Table I closed form: 8n + 2 = {8 * 32 + 2})")
    # The same microcode runs on the vectorized bit-plane backend with
    # identical results and identical microoperation charges.
    fast = AssociativeEmulator(num_subarrays=32, num_cols=32, backend="bitplane")
    fast_run = fast.run("vadd.vv", a, b, width=32)
    assert np.array_equal(np.asarray(fast_run.result), np.asarray(run.result))
    assert fast_run.stats.counts == run.stats.counts
    print(f"  bitplane backend: same bits, same {fast_run.stats.total_microops}"
          f" microops")
    print()


def stop_3_riscv_assembly():
    print("=" * 64)
    print("3. RISC-V vector assembly on the CAPE system model")
    print("=" * 64)
    device = Device(CAPE32K)
    n = 50_000
    a = np.arange(n) % 1000
    b = (np.arange(n) * 3) % 1000
    device.write_words(0x100000, a)
    device.write_words(0x200000, b)

    result = device.run(
        """
            li a0, 50000          # element count
            li a1, 0x100000       # &a
            li a2, 0x200000       # &b
            li a3, 0x300000       # &c
        loop:
            vsetvli t0, a0, e32   # grab up to MAX_VL lanes
            vle32.v v1, (a1)
            vle32.v v2, (a2)
            vadd.vv v3, v1, v2
            vse32.v v3, (a3)
            sub a0, a0, t0
            slli t1, t0, 2
            add a1, a1, t1
            add a2, a2, t1
            add a3, a3, t1
            bne a0, zero, loop
            ecall
        """
    )
    out = device.read_words(0x300000, n)
    assert np.array_equal(out, a + b)
    print(f"  {n} adds in {result.vector_instructions} vector instructions")
    print(f"  CAPE32k ({device.max_vl} lanes): "
          f"{result.cycles:,.0f} cycles = {result.seconds * 1e6:.1f} us "
          f"at {device.stats.frequency_hz / 1e9:.1f} GHz")
    print(f"  energy: {device.stats.energy_j * 1e6:.1f} uJ")
    # device.run returns a RunResult: stats ride along on the result.
    print(f"  {result.stats.summary()}")
    print()


if __name__ == "__main__":
    stop_1_figure1_increment()
    stop_2_chain_level_vadd()
    stop_3_riscv_assembly()
    print("Quickstart complete.")
