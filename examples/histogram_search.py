"""The paper's motivating example (Section II): histogram by brute force.

A conventional core builds a histogram by updating a shared bin array per
pixel. CAPE instead *searches* for every possible pixel value across the
whole image at once — 256 equality searches plus pop-counts — and the
massive parallelism of the search beats the scatter/update loop by an
order of magnitude (the paper quotes 13x at the CAPE32k design point).

Run:  python examples/histogram_search.py
"""

import numpy as np

from repro.baseline.ooo import OoOCore
from repro.api import CAPE131K, CAPE32K, CAPESystem
from repro.workloads.phoenix import Histogram


def main():
    n = 1 << 18
    print(f"Histogram of {n:,} pixels, 256 bins")
    print()

    baseline_wl = Histogram(n=n)
    baseline = OoOCore().run(baseline_wl.scalar_trace())
    print(f"  out-of-order core:  {baseline.seconds * 1e6:9.1f} us "
          f"(per-pixel bin updates)")

    for config in (CAPE32K, CAPE131K):
        wl = Histogram(n=n)
        cape = CAPESystem(config)
        result = wl.run_cape(cape)
        searches = cape.vcu.stats.instructions
        print(f"  {config.name}:            {result.seconds * 1e6:9.1f} us "
              f"({searches} vector instructions, result verified) "
              f"-> {baseline.seconds / result.seconds:5.1f}x speedup")
    print()
    print("The CAPE code issues one vmseq.vx per possible pixel value per")
    print("tile and counts matches through the global reduction tree —")
    print("turning a memory-bound scatter into search/pop-count pairs.")


if __name__ == "__main__":
    main()
