"""Section VII: the CSB as plain storage.

When associative compute is not needed, the chip can reconfigure a CAPE
tile's CSB as (a) a scratchpad, (b) content-addressable key-value
storage, or (c) a victim cache for an L2. This example exercises all
three on a bit-level CSB.

Run:  python examples/memory_modes.py
"""

import numpy as np

from repro.api import CSB
from repro.memmode import KeyValueStore, Scratchpad, VictimCache


def scratchpad_demo():
    print("-- scratchpad " + "-" * 40)
    csb = CSB(num_chains=8, num_subarrays=32, num_cols=32)
    pad = Scratchpad(csb)
    print(f"  capacity: {pad.capacity_words:,} words "
          f"({pad.capacity_words * 4 // 1024} KiB)")
    data = np.arange(100) * 17
    pad.write_block(0x0, data)
    assert pad.read_block(0x0, 100).tolist() == data.tolist()
    print(f"  wrote+read 100 words in {pad.cycles} row cycles")


def kv_demo():
    print("-- key-value store " + "-" * 35)
    csb = CSB(num_chains=4, num_subarrays=32, num_cols=32)
    kv = KeyValueStore(csb)
    print(f"  capacity: {kv.capacity:,} pairs "
          f"(a 32-subarray chain holds 16 x 32 = 512)")
    for key in range(300):
        kv.insert(key * 3 + 1, key)
    print(f"  inserted 300 pairs; lookup(298*3+1) = {kv.lookup(298 * 3 + 1)}")
    kv.delete(1)
    print(f"  after delete: lookup(1) = {kv.lookup(1)}")


def victim_cache_demo():
    print("-- victim cache " + "-" * 38)
    vc = VictimCache(num_rows=1024, ways=8)
    print(f"  1,024 line rows, {vc.index_bits} index bits, {vc.ways}-way")
    rng = np.random.default_rng(3)
    # L2 evictions with some reuse: a hot set of lines re-requested.
    hot = rng.integers(0, 512, size=64) * 64
    for addr in hot:
        vc.insert(int(addr))
    hits = sum(vc.lookup(int(a)) is not None for a in hot)
    print(f"  re-probing the evicted hot set: {hits}/64 hits "
          f"(hit rate so far {vc.stats.hit_rate:.2f})")


if __name__ == "__main__":
    scratchpad_demo()
    kv_demo()
    victim_cache_demo()
    print("\nAll three memory-only modes behaved as expected.")
