"""Serving live traffic through the process-sharded asyncio gateway.

Where ``serving_pool.py`` replays a recorded job stream deterministically
under the simulated clock, this example serves *live* requests on the
wall clock through ``repro.serve``: four devices sharded across worker
processes behind an asyncio :class:`~repro.api.Gateway`.

Three tenants share the pool. ``batch`` has deep quota but no lane cap;
``interactive`` is capped tighter; ``abusive`` floods the gateway past
its queue bound and gets shed with ``retry_after_s`` hints instead of
degrading the others. Every request is a picklable
:class:`~repro.api.JobSpec` naming a registered kernel — including
``match_count``, the content-addressable search the substrate is named
for — and every output is checked against its numpy golden.

With ``--kill-worker`` a seeded :class:`~repro.api.WorkerKill` crashes
worker 0 mid-serving (a hard ``os._exit``, no goodbye): the gateway
retires its devices, re-queues the in-flight requests onto survivors,
and still completes every well-behaved request.

Run:  python examples/serving_gateway.py [--kill-worker] [--workers N]
"""

import argparse
import asyncio

import numpy as np

from repro.api import (
    AdmissionError,
    CAPE32K,
    FaultPlan,
    Gateway,
    JobSpec,
    ServeConfig,
    TenantQuota,
    WorkerKill,
)


def make_specs(tenant, count, offset=0):
    specs = []
    for i in range(count):
        base = np.arange(32) + offset + i
        if i % 3 == 0:
            specs.append(JobSpec(
                f"{tenant}-dot{i}", "dot",
                {"x": base, "y": np.arange(32) + 1},
                lanes=32, tenant=tenant,
                golden=int((base * (np.arange(32) + 1)).sum()),
            ))
        elif i % 3 == 1:
            specs.append(JobSpec(
                f"{tenant}-match{i}", "match_count",
                {"data": base % 11, "needle": i % 11},
                lanes=32, tenant=tenant,
                golden=int((base % 11 == i % 11).sum()),
            ))
        else:
            specs.append(JobSpec(
                f"{tenant}-saxpy{i}", "saxpy_sum",
                {"x": base, "y": np.arange(32), "a": 2},
                lanes=32, tenant=tenant,
                golden=int((2 * base + np.arange(32)).sum()),
            ))
    return specs


async def well_behaved(gateway, specs):
    """Honour retry_after_s — the cooperating-client loop."""
    return await asyncio.gather(
        *(gateway.submit_retrying(spec, attempts=60) for spec in specs)
    )


async def abusive(gateway, specs):
    """Fire everything at once, never back off; count the shed."""
    served, shed = 0, 0
    futures = []
    for spec in specs:
        try:
            futures.append(gateway.submit_nowait(spec))
        except AdmissionError:
            shed += 1
    for result in await asyncio.gather(*futures, return_exceptions=True):
        served += not isinstance(result, Exception)
    return served, shed


async def main(args):
    fault_plan = None
    if args.kill_worker:
        fault_plan = FaultPlan(faults=(WorkerKill(at_job=3, worker=0),))
    config = ServeConfig(
        configs=(CAPE32K,) * 4,
        workers=args.workers,
        max_queue=12,
        quotas={
            "interactive": TenantQuota(max_pending=4, max_lanes=50_000),
            "batch": TenantQuota(max_pending=16),
        },
        fault_plan=fault_plan,
        # Workers fuse each kernel's microcode into one cached superplan
        # where eligible; fault-plan targets keep the per-primitive path.
        superplan="auto",
    )
    async with Gateway(config) as gateway:
        batch = asyncio.create_task(
            well_behaved(gateway, make_specs("batch", 12))
        )
        interactive = asyncio.create_task(
            well_behaved(gateway, make_specs("interactive", 8, offset=100))
        )
        abuse = asyncio.create_task(
            abusive(gateway, make_specs("abusive", 40, offset=500))
        )
        batch_results = await batch
        interactive_results = await interactive
        abusive_served, abusive_shed = await abuse
        report = gateway.report()

    for result in (*batch_results, *interactive_results):
        assert result.ok and result.validated, result
    print("tenant          served  validated")
    print(f"batch           {len(batch_results):6d}  all golden-checked")
    print(f"interactive     {len(interactive_results):6d}  all golden-checked")
    print(f"abusive         {abusive_served:6d}  ({abusive_shed} shed at admission)")
    print()
    summary = report.as_dict()
    print(f"gateway: {summary['completed']} completed, "
          f"{summary['rejected']} rejected "
          f"({summary['rejected_queue_full']} queue-full, "
          f"{summary['rejected_quota']} quota), "
          f"p50 {summary['p50_latency_s'] * 1e3:.1f} ms, "
          f"p99 {summary['p99_latency_s'] * 1e3:.1f} ms")
    if args.kill_worker:
        print(f"worker deaths: {summary['worker_deaths']} "
              f"(devices failed over, {summary['retries']} re-queued "
              f"requests)")
        assert summary["worker_deaths"] == 1
    per_worker = ", ".join(
        f"worker {w}: {c['hits']}h/{c['misses']}m"
        for w, c in sorted(summary["plan_cache"].items())
    )
    print(f"per-process plan caches: {per_worker}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--kill-worker", action="store_true",
        help="crash worker 0 mid-serving and fail over",
    )
    asyncio.run(main(parser.parse_args()))
