"""The kmeans capacity cliff (Section VI-E).

kmeans iterates over the same dataset until convergence. If the dataset
fits in the CSB, CAPE loads it once and reuses it every iteration; if it
does not, every iteration re-streams it from HBM. The paper's dataset
fits CAPE131k but not CAPE32k, which is why kmeans shows the most
dramatic jump between the two design points (426x vs an area-comparable
multicore in the paper).

Run:  python examples/kmeans_capacity.py
"""

from repro.baseline.multicore import Multicore
from repro.baseline.ooo import OoOCore
from repro.api import CAPE131K, CAPE32K, CAPESystem
from repro.workloads.phoenix import KMeans

ARGS = dict(points=120_000, dims=8, k=8, iterations=8)


def main():
    print(f"kmeans: {ARGS['points']:,} points x {ARGS['dims']} dims, "
          f"k={ARGS['k']}, {ARGS['iterations']} iterations")
    print(f"  dataset lanes needed: {ARGS['points']:,}")
    print(f"  CAPE32k capacity:     {CAPE32K.max_vl:,} lanes  (spills!)")
    print(f"  CAPE131k capacity:    {CAPE131K.max_vl:,} lanes (resident)")
    print()

    base1 = OoOCore().run(KMeans(**ARGS).scalar_trace())
    base2 = Multicore(2).run(KMeans(**ARGS).scalar_trace())
    print(f"  1-core baseline:  {base1.seconds * 1e3:8.2f} ms")
    print(f"  2-core baseline:  {base2.seconds * 1e3:8.2f} ms")

    t32 = KMeans(**ARGS).run_cape(CAPESystem(CAPE32K))
    t131 = KMeans(**ARGS).run_cape(CAPESystem(CAPE131K))
    print(f"  CAPE32k:          {t32.seconds * 1e3:8.2f} ms "
          f"-> {base1.seconds / t32.seconds:5.1f}x vs 1 core")
    print(f"  CAPE131k:         {t131.seconds * 1e3:8.2f} ms "
          f"-> {base2.seconds / t131.seconds:5.1f}x vs 2 cores")
    print()
    print("Doubling CAPE's area more than doubles kmeans performance: the")
    print("dataset becomes CSB-resident and the per-iteration HBM reload")
    print("disappears — the capacity cliff of Figure 11.")


if __name__ == "__main__":
    main()
