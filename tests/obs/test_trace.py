"""obs.trace: the two timelines and the Chrome/JSONL exports."""

import json

from repro.obs import PID_SIM, PID_WALL, Tracer


def make_traced():
    tracer = Tracer()
    with tracer.span("phase", cat="bench", tid="host", n=3):
        pass
    tracer.complete("vadd.vv", "interpreter", ts=100, dur=40, tid="machine")
    tracer.instant("arrive:job", "runtime", ts=140, tid="dev0")
    tracer.instant("host-mark", "bench")  # no ts -> wall timeline
    return tracer


def test_timelines_and_queries():
    tracer = make_traced()
    assert len(tracer) == 4
    assert tracer.categories() == ["bench", "interpreter", "runtime"]
    spans = list(tracer.spans())
    assert [s.name for s in spans] == ["phase", "vadd.vv"]
    wall_span, sim_span = spans
    assert wall_span.pid == PID_WALL
    assert wall_span.dur is not None and wall_span.dur >= 0
    assert wall_span.args == {"n": 3}
    assert sim_span.pid == PID_SIM
    assert (sim_span.ts, sim_span.dur) == (100, 40)
    assert [s.name for s in tracer.spans("interpreter")] == ["vadd.vv"]
    instants = [e for e in tracer.events if e.ph == "i"]
    assert {e.pid for e in instants} == {PID_WALL, PID_SIM}


def test_chrome_export_is_valid_and_labelled():
    tracer = make_traced()
    payload = json.loads(tracer.chrome_json())
    events = payload["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    assert {m["args"]["name"] for m in meta} == {"wall clock", "device cycles"}
    spans = [e for e in events if e["ph"] == "X"]
    assert all({"name", "cat", "ts", "pid", "tid", "dur"} <= e.keys() for e in spans)
    instants = [e for e in events if e["ph"] == "i"]
    assert all(e["s"] == "t" for e in instants)
    assert "dur" not in instants[0]


def test_write_chrome_and_jsonl_roundtrip(tmp_path):
    tracer = make_traced()
    chrome = tmp_path / "run.trace.json"
    tracer.write_chrome(chrome)
    assert json.loads(chrome.read_text())["traceEvents"]
    jsonl = tmp_path / "run.jsonl"
    tracer.write_jsonl(jsonl)
    lines = [json.loads(line) for line in jsonl.read_text().splitlines()]
    assert len(lines) == len(tracer)
    assert lines[1]["name"] == "vadd.vv"
    tracer.clear()
    assert len(tracer) == 0


def test_traced_run_covers_every_layer():
    """One traced device run leaves spans on all three layers."""
    from repro.api import CAPE32K, Device

    device = Device(CAPE32K)
    result = device.run(
        """
            li a0, 64
            vsetvli t0, a0, e32
            vmv.v.x v1, a0
            vmv.v.x v2, t0
            vadd.vv v3, v1, v2
            ecall
        """,
        trace=True,
    )
    assert result.trace is not None
    cats = set(result.trace.categories())
    assert {"interpreter", "microcode", "runtime"} <= cats
    payload = json.loads(result.trace.chrome_json())
    assert payload["traceEvents"]
    # The run-scoped observer detaches afterwards: the device is null again.
    assert not device.observer.enabled
