"""obs.report + the unified repro.api stats surface (PR 3 satellites).

Covers the ProfileReport folds, the RunResult dataclass and its
MachineResult delegation, the one-naming-scheme contract
(``as_dict``/``summary`` on every stats surface), and the deprecation
shims on the old deep-import paths.
"""

import sys
import warnings

import pytest

from repro.api import (
    CAPE32K,
    Device,
    Observer,
    ProfileReport,
    RunResult,
    run,
)

PROGRAM = """
    li a0, 64
    vsetvli t0, a0, e32
    vmv.v.x v1, a0
    vmv.v.x v2, t0
    vadd.vv v3, v1, v2
    ecall
"""


def test_profile_report_folds_kernels():
    obs = Observer()
    device = Device(CAPE32K, backend="bitplane", observer=obs)
    profile = ProfileReport(obs)
    device.system.vsetvl(64, sew=8)
    with profile.kernel("fill"):
        device.system.vmv_vx(1, 3)
        device.system.vmv_vx(2, 4)
    with profile.kernel("vadd"):
        device.system.vadd(3, 1, 2)
    assert profile.kernels == ["fill", "vadd"]
    microops = profile.microop_totals("vadd")
    assert sum(microops.values()) > 0
    assert all("/" in bucket for bucket in microops)
    cycles = profile.cycles("vadd")
    assert set(cycles) == {"compute", "memory", "scalar"}
    assert profile.total_cycles("vadd") == sum(cycles.values()) > 0
    assert profile.energy_j("vadd") > 0
    exported = profile.as_dict()
    assert exported["vadd"]["microops"] == microops
    assert "vadd" in profile.summary()
    assert "vadd" in profile.table(title="t") and profile.table().startswith(
        "per-kernel profile"
    )


def test_profile_report_accumulates_repeated_scopes():
    obs = Observer()
    device = Device(CAPE32K, backend="bitplane", observer=obs)
    profile = ProfileReport(obs)
    device.system.vsetvl(64, sew=8)
    device.system.vmv_vx(1, 3)
    device.system.vmv_vx(2, 4)
    with profile.kernel("vadd"):
        device.system.vadd(3, 1, 2)
    first = sum(profile.microop_totals("vadd").values())
    with profile.kernel("vadd"):
        device.system.vadd(4, 1, 2)
    assert sum(profile.microop_totals("vadd").values()) == 2 * first


def test_profile_report_rejects_null_observer():
    from repro.obs import NULL_OBSERVER

    with pytest.raises(ValueError):
        ProfileReport(NULL_OBSERVER)


def test_run_result_fields_and_delegation():
    result = run(PROGRAM)
    assert isinstance(result, RunResult)
    assert result.cycles > 0
    assert result.trace is None  # not traced
    # Delegated MachineResult fields keep old callers working.
    assert result.halted == "ecall"
    assert result.seconds == result.stats.seconds
    assert result.xregs[10] == 64
    assert result.values[10] == 64
    with pytest.raises(AttributeError):
        result.not_a_field
    exported = result.as_dict()
    assert exported["halted"] == "ecall"
    assert exported["stats"]["cycles"] == result.cycles
    assert result.summary() == result.stats.summary()


def test_every_stats_surface_shares_the_contract():
    """CAPERunStats / TelemetryReport / ProfileReport: as_dict + summary."""
    from repro.api import DevicePool, Footprint, Job

    result = run(PROGRAM)
    stats_dict = result.stats.as_dict()
    assert stats_dict["seconds"] == result.stats.seconds
    assert "cycles" in result.stats.summary()

    pool = DevicePool([CAPE32K])
    pool.submit(Job("j", lambda system: system.vmv_vx(1, 2), Footprint(lanes=64)))
    report = pool.run()
    report_dict = report.as_dict()
    assert report_dict["completed"] == 1
    assert report.summary()

    obs = Observer()
    profile = ProfileReport(obs)
    with profile.kernel("noop"):
        pass
    assert profile.as_dict() == {
        "noop": {
            "microops": {},
            "cycles": {"compute": 0.0, "memory": 0.0, "scalar": 0.0},
            "total_cycles": 0.0,
            "energy_j": 0.0,
            "instructions": {},
        }
    }


def test_deprecated_engine_system_stats_import_warns():
    import repro.engine.system as system_mod
    from repro.obs.stats import CAPERunStats

    with pytest.warns(DeprecationWarning, match="repro.engine.system"):
        cls = system_mod.CAPERunStats
    assert cls is CAPERunStats
    # The supported paths stay silent.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        from repro.api import CAPERunStats as api_cls
        from repro.engine import CAPERunStats as engine_cls
    assert api_cls is engine_cls is CAPERunStats


def test_deprecated_runtime_telemetry_module_warns():
    sys.modules.pop("repro.runtime.telemetry", None)
    with pytest.warns(DeprecationWarning, match="repro.runtime.telemetry"):
        import repro.runtime.telemetry as shim
    from repro.runtime import Telemetry, TelemetryReport

    assert shim.Telemetry is Telemetry
    assert shim.TelemetryReport is TelemetryReport
