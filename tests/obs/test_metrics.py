"""obs.metrics: label handling, kinds, snapshots, and the null fast path."""

import pytest

from repro.common.errors import ConfigError
from repro.obs import (
    NULL_OBSERVER,
    MetricsRegistry,
    NullObserver,
    Observer,
    diff_snapshots,
    label_key,
)


def test_label_key_is_order_free():
    assert label_key({"a": 1, "b": "x"}) == label_key({"b": "x", "a": 1})
    assert label_key({}) == ()
    # Values are stringified, so 1 and "1" land on the same series.
    assert label_key({"n": 1}) == label_key({"n": "1"})


def test_counter_series_keyed_by_labels():
    reg = MetricsRegistry()
    reg.counter("csb.microops", op="search", flavor="bs").inc(3)
    reg.counter("csb.microops", flavor="bs", op="search").inc(2)  # same series
    reg.counter("csb.microops", op="search", flavor="bp").inc(10)
    assert reg.value("csb.microops", op="search", flavor="bs") == 5
    assert reg.value("csb.microops", op="search", flavor="bp") == 10
    assert reg.total("csb.microops") == 15
    assert reg.total("csb.microops", flavor="bs") == 5
    assert reg.value("csb.microops", op="update", flavor="bs") == 0
    assert len(reg.series("csb.microops")) == 2


def test_counter_rejects_negative_increment():
    reg = MetricsRegistry()
    with pytest.raises(ConfigError):
        reg.counter("x").inc(-1)


def test_family_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("engine.cycles", kind="compute")
    with pytest.raises(ConfigError):
        reg.gauge("engine.cycles", kind="compute")


def test_gauge_and_histogram():
    reg = MetricsRegistry()
    g = reg.gauge("runtime.occupancy", device="a")
    g.set(4)
    g.inc()
    g.dec(2)
    assert g.value == 3
    h = reg.histogram("runtime.queue_depth", device="a")
    for depth in (1, 2, 5):
        h.observe(depth)
    assert h.count == 3
    assert h.total == 8
    assert h.min == 1 and h.max == 5
    assert h.mean == pytest.approx(8 / 3)


def test_snapshot_diff_isolates_a_window():
    reg = MetricsRegistry()
    reg.counter("a", k="x").inc(5)
    before = reg.snapshot()
    reg.counter("a", k="x").inc(2)
    reg.counter("b").inc(1)
    delta = diff_snapshots(reg.snapshot(), before)
    assert delta == {
        ("a", label_key({"k": "x"})): 2,
        ("b", ()): 1,
    }


def test_observer_labelled_views_share_registry():
    obs = Observer()
    dev = obs.labelled(device="d0")
    dev.counter("engine.cycles", kind="compute").inc(7)
    assert obs.metrics.value("engine.cycles", device="d0", kind="compute") == 7
    assert dev.tracer is obs.tracer


def test_null_observer_is_inert_and_shared():
    assert not NULL_OBSERVER.enabled
    assert NullObserver().labelled(device="x").enabled is False
    # Every handle is a no-op and reports zero.
    handle = NULL_OBSERVER.counter("anything", label=1)
    handle.inc(100)
    assert handle.value == 0.0
    NULL_OBSERVER.gauge("g").set(9)
    NULL_OBSERVER.histogram("h").observe(3)
    with NULL_OBSERVER.span("s", cat="c"):
        pass
    NULL_OBSERVER.complete("e", "c", ts=0, dur=1)
    NULL_OBSERVER.instant("i", "c", ts=0)
    assert NULL_OBSERVER.metrics is None
    assert NULL_OBSERVER.tracer is None


def test_null_observer_system_records_nothing(monkeypatch):
    """A system without an observer must not build any metric series."""
    from repro.engine.system import CAPEConfig, CAPESystem

    system = CAPESystem(CAPEConfig("null-obs", num_chains=4))
    assert not system.observer.enabled
    assert system.vcu.observer is None
    assert system.vmu.observer is None
    system.vsetvl(64, sew=32)
    system.vmv_vx(1, 5)
    system.vmv_vx(2, 6)
    system.vadd(3, 1, 2)
    assert system.stats.cycles > 0
