"""Area model: Figure 8 chain layout and tile-level area equivalence."""

import pytest

from repro.circuits.area import AreaModel, ChainLayout
from repro.common.errors import ConfigError


def test_chain_layout_matches_figure_8():
    layout = ChainLayout()
    assert layout.width_um == pytest.approx(13.0)
    assert layout.height_um == pytest.approx(175.0)
    assert layout.area_um2 == pytest.approx(13 * 175)


def test_csb_area_scales_linearly():
    model = AreaModel()
    assert model.csb_area_mm2(2048) == pytest.approx(2 * model.csb_area_mm2(1024))


def test_cape32k_fits_one_reference_tile():
    """CAPE32k (1,024 chains) is area-equivalent to ~1 OoO tile."""
    model = AreaModel()
    ratio = model.equivalent_baseline_cores(1024)
    assert 0.8 <= ratio <= 1.2


def test_cape131k_fits_two_reference_tiles():
    """CAPE131k (4,096 chains) is area-equivalent to ~2 OoO tiles."""
    model = AreaModel()
    ratio = model.equivalent_baseline_cores(4096)
    assert 1.6 <= ratio <= 2.4


def test_reference_tile_slightly_under_9mm2():
    assert AreaModel().reference_tile_mm2 < 9.0


def test_reduction_tree_area_scales_with_chains():
    model = AreaModel()
    a1 = model.cape_tile_area_mm2(1024)
    a4 = model.cape_tile_area_mm2(4096)
    csb_delta = model.csb_area_mm2(4096) - model.csb_area_mm2(1024)
    assert a4 - a1 > csb_delta  # tree growth adds beyond raw CSB area


def test_invalid_geometry_rejected():
    with pytest.raises(ConfigError):
        ChainLayout(width_um=0)
    with pytest.raises(ConfigError):
        AreaModel().csb_area_mm2(0)
