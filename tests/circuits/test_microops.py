"""Circuit-level model: Table II values and the derived 2.7 GHz clock."""

import pytest

from repro.circuits.microops import (
    CircuitModel,
    Microop,
    MicroopTiming,
    TABLE_II_TIMINGS,
)
from repro.common.errors import ConfigError
from repro.common.units import PJ, PS


def test_table_ii_delays_match_paper():
    expect_ps = {
        Microop.READ: 237,
        Microop.WRITE: 181,
        Microop.SEARCH: 227,
        Microop.UPDATE: 209,
        Microop.UPDATE_PROP: 209,
        Microop.REDUCE: 217,
    }
    for op, ps in expect_ps.items():
        assert TABLE_II_TIMINGS[op].delay_s == pytest.approx(ps * PS)


def test_table_ii_energies_match_paper():
    model = CircuitModel()
    assert model.energy(Microop.SEARCH) == pytest.approx(1.0 * PJ)
    assert model.energy(Microop.UPDATE) == pytest.approx(1.2 * PJ)
    assert model.energy(Microop.READ, bit_parallel=True) == pytest.approx(2.8 * PJ)
    assert model.energy(Microop.WRITE, bit_parallel=True) == pytest.approx(2.4 * PJ)
    assert model.energy(Microop.SEARCH, bit_parallel=True) == pytest.approx(5.7 * PJ)
    assert model.energy(Microop.UPDATE, bit_parallel=True) == pytest.approx(3.8 * PJ)
    assert model.energy(Microop.REDUCE, bit_parallel=True) == pytest.approx(8.9 * PJ)


def test_critical_path_is_read():
    model = CircuitModel()
    assert model.critical_path_s == TABLE_II_TIMINGS[Microop.READ].delay_s


def test_raw_frequency_is_4_22_ghz():
    model = CircuitModel()
    assert model.max_frequency_hz == pytest.approx(4.22e9, rel=0.01)


def test_derated_frequency_is_2_7_ghz():
    """Section VI-B: the clock is conservatively derated to 2.7 GHz."""
    model = CircuitModel()
    assert model.frequency_hz == pytest.approx(2.7e9, rel=0.02)


def test_update_prop_has_no_bit_parallel_flavour():
    model = CircuitModel()
    with pytest.raises(ConfigError):
        model.energy(Microop.UPDATE_PROP, bit_parallel=True)


def test_read_falls_back_to_bit_parallel_energy():
    # Reads access all subarrays of a chain at once; the bit-serial
    # request resolves to the only flavour that exists.
    model = CircuitModel()
    assert model.energy(Microop.READ) == pytest.approx(2.8 * PJ)


def test_invalid_derate_rejected():
    with pytest.raises(ConfigError):
        CircuitModel(frequency_derate=0.0)
    with pytest.raises(ConfigError):
        CircuitModel(frequency_derate=1.5)


def test_missing_timing_rejected():
    with pytest.raises(ConfigError):
        CircuitModel(timings={Microop.READ: MicroopTiming(1 * PS, None, 1 * PJ)})
