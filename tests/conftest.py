"""Shared fixtures for the CAPE reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.csb.chain import Chain
from repro.csb.csb import CSB
from repro.engine.system import CAPEConfig, CAPESystem


@pytest.fixture
def chain8():
    """A small chain: 8-bit elements, 16 columns (fast bit-level tests)."""
    return Chain(num_subarrays=8, num_cols=16)


@pytest.fixture
def chain32():
    """A full-width chain: 32-bit elements, 32 columns."""
    return Chain(num_subarrays=32, num_cols=32)


@pytest.fixture
def small_csb():
    """A 4-chain CSB with 8-bit elements."""
    return CSB(num_chains=4, num_subarrays=8, num_cols=8)


@pytest.fixture
def tiny_cape():
    """A small CAPE system (64 chains = 2,048 lanes) for fast system tests."""
    return CAPESystem(CAPEConfig(name="tiny", num_chains=64))


@pytest.fixture
def rng():
    return np.random.default_rng(0xCAFE)
