"""Microcode tracing (the debugging/teaching view of the Table I walks)."""

import pytest

from repro.circuits.microops import Microop
from repro.csb.counter import MicroopStats, trace_microcode


def test_trace_disabled_by_default():
    stats = MicroopStats()
    stats.record(Microop.SEARCH)
    assert stats.trace == []


def test_trace_records_sequence():
    stats = MicroopStats(keep_trace=True)
    stats.record(Microop.SEARCH)
    stats.record(Microop.UPDATE, bit_parallel=True, n=2)
    assert stats.trace == [
        (Microop.SEARCH, False),
        (Microop.UPDATE, True),
        (Microop.UPDATE, True),
    ]


def test_clear_resets_trace():
    stats = MicroopStats(keep_trace=True)
    stats.record(Microop.READ)
    stats.clear()
    assert stats.trace == []
    assert stats.total_microops == 0


def test_vadd_listing_is_8n_plus_2():
    lines = trace_microcode("vadd.vv", width=4)
    assert len(lines) == 8 * 4 + 2
    # The two initialisation updates lead, bit-parallel.
    assert "BP update" in lines[0]
    assert "BP update" in lines[1]
    # Per bit: seven searches then the dual-subarray update.
    assert "update_prop" in lines[9]


def test_logic_listing_is_three_lines():
    lines = trace_microcode("vand.vv")
    assert len(lines) == 3
    assert "BP update" in lines[0]
    assert "BP search" in lines[1]
    assert "BP update" in lines[2]


def test_listing_for_scalar_and_shift_forms():
    assert len(trace_microcode("vadd.vx", width=4)) > 4
    assert len(trace_microcode("vsll.vi", width=8, lanes=4)) == 8  # 2 x cols
