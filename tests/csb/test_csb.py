"""CSB-level behaviour: interleaving, VLA masking, global reduction."""

import numpy as np
import pytest

from repro.common.errors import CapacityError, ConfigError
from repro.csb.csb import CSB


def test_max_vl_is_chains_times_columns(small_csb):
    assert small_csb.max_vl == 4 * 8


def test_adjacent_elements_interleave_across_chains(small_csb):
    """Section V-E: element e lives in chain e % C (DIMM-style interleave)."""
    for element in range(small_csb.max_vl):
        chain, col = small_csb.locate(element)
        assert chain == element % 4
        assert col == element // 4


def test_locate_rejects_out_of_range(small_csb):
    with pytest.raises(CapacityError):
        small_csb.locate(small_csb.max_vl)


def test_vector_write_read_round_trip(small_csb, rng):
    values = rng.integers(0, 256, size=small_csb.max_vl)
    small_csb.write_vector(3, values)
    assert small_csb.read_vector(3).tolist() == values.tolist()


def test_poke_peek_round_trip(small_csb, rng):
    values = rng.integers(0, 256, size=small_csb.max_vl)
    small_csb.poke_vector(3, values)
    assert small_csb.peek_vector(3).tolist() == values.tolist()


def test_vector_larger_than_capacity_rejected(small_csb):
    with pytest.raises(CapacityError):
        small_csb.write_vector(0, np.zeros(small_csb.max_vl + 1))


def test_set_vector_length_masks_tail(small_csb):
    small_csb.poke_vector(1, np.zeros(small_csb.max_vl))
    small_csb.set_vector_length(10)
    # Bulk-set through every chain: only elements 0..9 may change.
    for chain in small_csb.chains:
        chain.update_bit_parallel(1, 1, use_tags=False)
    values = small_csb.peek_vector(1)
    assert (values[:10] > 0).all()
    assert (values[10:] == 0).all()


def test_fully_masked_chains_power_gate(small_csb):
    small_csb.set_vector_length(2)  # elements 0,1 -> chains 0,1 only
    gated = [chain.is_power_gated for chain in small_csb.chains]
    assert gated == [False, False, True, True]


def test_vstart_masks_prefix(small_csb):
    small_csb.poke_vector(1, np.zeros(small_csb.max_vl))
    small_csb.set_vector_length(8, vstart=4)
    for chain in small_csb.chains:
        chain.update_bit_parallel(1, 1, use_tags=False)
    values = small_csb.peek_vector(1)
    assert (values[:4] == 0).all()
    assert (values[4:8] > 0).all()
    assert (values[8:] == 0).all()


def test_set_vector_length_bounds(small_csb):
    with pytest.raises(CapacityError):
        small_csb.set_vector_length(small_csb.max_vl + 1)
    with pytest.raises(ConfigError):
        small_csb.set_vector_length(4, vstart=5)


def test_global_redsum_combines_chain_partials(small_csb, rng):
    values = rng.integers(0, 200, size=small_csb.max_vl)
    small_csb.poke_vector(2, values)
    assert small_csb.redsum(2, width=8) == int(values.sum())


def test_redsum_after_vl_masking(small_csb):
    small_csb.poke_vector(2, np.ones(small_csb.max_vl))
    small_csb.set_vector_length(13)
    assert small_csb.redsum(2, width=8) == 13
