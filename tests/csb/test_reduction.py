"""Global reduction tree: pipeline depth and staged-sum correctness."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigError
from repro.csb.reduction import ReductionTree


def test_five_stages_at_1024_chains():
    """Section VI-C: the synthesized tree for 1,024 chains has 5 stages."""
    assert ReductionTree(1024).num_stages == 5


def test_stage_count_scales_with_capacity():
    assert ReductionTree(4096).num_stages == 6
    assert ReductionTree(256).num_stages == 4
    assert ReductionTree(4).num_stages == 1
    assert ReductionTree(1).num_stages == 1


def test_latency_is_bits_plus_pipeline_fill():
    tree = ReductionTree(1024)
    assert tree.latency_cycles(32) == 32 + 5
    assert tree.latency_cycles(1) == 1 + 5


def test_latency_rejects_nonpositive_bits():
    with pytest.raises(ConfigError):
        ReductionTree(4).latency_cycles(0)


def test_reduce_small():
    tree = ReductionTree(4)
    assert tree.reduce([1, 2, 3, 4]) == 10


def test_reduce_validates_arity():
    with pytest.raises(ConfigError):
        ReductionTree(4).reduce([1, 2, 3])


@given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=64))
def test_staged_reduce_equals_flat_sum(partials):
    tree = ReductionTree(len(partials))
    assert tree.reduce(partials) == sum(partials)


def test_invalid_chain_count():
    with pytest.raises(ConfigError):
        ReductionTree(0)
