"""Subarray semantics: the Figure 3 search/update behaviour."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigError, ProtocolError
from repro.csb.subarray import MAX_SEARCH_ROWS, Subarray


def make_3x3(values):
    """Build the paper's 3x3 illustration with given row bit patterns."""
    sub = Subarray(num_rows=3, num_cols=3)
    for r, row in enumerate(values):
        sub.write_row(r, np.array(row, dtype=np.uint8))
    return sub


def test_figure3_search_matches_column_with_all_bits_equal():
    # Columns: c0=(1,0,1), c1=(0,0,1), c2=(1,1,0)
    sub = make_3x3([[1, 0, 1], [0, 0, 1], [1, 1, 0]])
    tags = sub.search({0: 1, 1: 0, 2: 1})
    assert tags.tolist() == [1, 0, 0]


def test_search_dont_care_rows_excluded():
    sub = make_3x3([[1, 0, 1], [0, 0, 1], [1, 1, 0]])
    tags = sub.search({0: 1})  # only row 0 driven
    assert tags.tolist() == [1, 0, 1]


def test_search_for_zero_drives_wll():
    sub = make_3x3([[1, 0, 1], [0, 0, 1], [1, 1, 0]])
    tags = sub.search({0: 0})
    assert tags.tolist() == [0, 1, 0]


def test_empty_search_matches_all_columns():
    """No driven rows: matchlines stay precharged (all match)."""
    sub = make_3x3([[1, 0, 1], [0, 0, 1], [1, 1, 0]])
    assert sub.search({}).tolist() == [1, 1, 1]


def test_search_row_limit_enforced():
    sub = Subarray(num_rows=8, num_cols=4)
    with pytest.raises(ProtocolError):
        sub.search({0: 1, 1: 1, 2: 1, 3: 1, 4: 1})
    sub.search({i: 1 for i in range(MAX_SEARCH_ROWS)})  # exactly 4 is legal


def test_update_writes_only_selected_columns():
    sub = make_3x3([[0, 0, 0], [0, 0, 0], [0, 0, 0]])
    sub.update(1, 1, column_select=np.array([1, 0, 1], dtype=np.uint8))
    assert sub.read_row(1).tolist() == [1, 0, 1]


def test_update_defaults_to_tag_bits():
    sub = make_3x3([[1, 0, 1], [0, 0, 1], [1, 1, 0]])
    sub.search({0: 1})  # tags = [1, 0, 1]
    sub.update(2, 1)
    assert sub.read_row(2).tolist() == [1, 1, 1]  # col1 keeps its old 1
    sub.search({0: 0})  # tags = [0, 1, 0]
    sub.update(2, 0)
    assert sub.read_row(2).tolist() == [1, 0, 1]


def test_tag_accumulation_ors_matches():
    sub = make_3x3([[1, 0, 1], [0, 1, 1], [0, 0, 0]])
    sub.search({0: 1})                   # [1, 0, 1]
    tags = sub.search({1: 1}, accumulate=True)  # OR [0, 1, 1]
    assert tags.tolist() == [1, 1, 1]


def test_read_write_bit():
    sub = Subarray(num_rows=4, num_cols=4)
    sub.write_bit(2, 3, 1)
    assert sub.read_bit(2, 3) == 1
    sub.write_bit(2, 3, 0)
    assert sub.read_bit(2, 3) == 0


def test_row_bounds_checked():
    sub = Subarray(num_rows=4, num_cols=4)
    with pytest.raises(ConfigError):
        sub.read_bit(4, 0)
    with pytest.raises(ConfigError):
        sub.write_bit(-1, 0, 1)
    with pytest.raises(ConfigError):
        sub.search({9: 1})


@given(st.lists(st.integers(0, 1), min_size=8, max_size=8),
       st.integers(0, 1))
def test_search_single_row_property(col_bits, want):
    """A one-row search marks exactly the columns storing the wanted bit."""
    sub = Subarray(num_rows=2, num_cols=8)
    sub.write_row(0, np.array(col_bits, dtype=np.uint8))
    tags = sub.search({0: want})
    assert tags.tolist() == [1 if b == want else 0 for b in col_bits]


def test_write_row_validates_shape():
    sub = Subarray(num_rows=2, num_cols=8)
    with pytest.raises(ConfigError):
        sub.write_row(0, np.zeros(4, dtype=np.uint8))
