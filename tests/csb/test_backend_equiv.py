"""Differential property tests: reference vs. bitplane execution backends.

Random instruction programs run on two emulators that differ only in
their CSB execution backend; every observable — destination values,
full register-file state, tag bits, reduction scalars, and the charged
microoperation counters — must be bit-identical.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.assoc.emulator import AssociativeEmulator, golden
from repro.csb import CSB, Chain
from repro.obs import Observer

N_COLS = 8

#: (mnemonic, needs_b, needs_scalar, maskable)
OPS = [
    ("vadd.vv", True, False, True),
    ("vsub.vv", True, False, True),
    ("vmul.vv", True, False, False),
    ("vand.vv", True, False, True),
    ("vor.vv", True, False, True),
    ("vxor.vv", True, False, True),
    ("vadd.vx", False, True, True),
    ("vrsub.vx", False, True, False),
    ("vmv.v.x", False, True, True),
    ("vmv.v.v", False, False, True),
    ("vmerge.vv", True, False, True),
    ("vmseq.vx", False, True, False),
    ("vmseq.vv", True, False, False),
    ("vmslt.vv", True, False, False),
    ("vmsltu.vv", True, False, False),
    ("vmsne.vv", True, False, False),
    ("vmin.vv", True, False, False),
    ("vmax.vv", True, False, False),
    ("vminu.vv", True, False, False),
    ("vmaxu.vv", True, False, False),
    ("vsll.vi", False, True, False),
    ("vsrl.vi", False, True, False),
    ("vsra.vi", False, True, False),
    ("vredsum.vs", False, False, False),
]

MASK_ONLY = {"vmseq.vx", "vmseq.vv", "vmslt.vv", "vmsltu.vv", "vmsne.vv"}


@st.composite
def instruction(draw, width):
    mnemonic, needs_b, needs_scalar, maskable = draw(st.sampled_from(OPS))
    hi = (1 << width) - 1
    a = draw(
        st.lists(st.integers(0, hi), min_size=N_COLS, max_size=N_COLS)
    )
    b = (
        draw(st.lists(st.integers(0, hi), min_size=N_COLS, max_size=N_COLS))
        if needs_b
        else None
    )
    if mnemonic in ("vsll.vi", "vsrl.vi", "vsra.vi"):
        scalar = draw(st.integers(0, width - 1))
    elif needs_scalar:
        scalar = draw(st.integers(-hi - 1, hi))
    else:
        scalar = None
    use_mask = mnemonic == "vmerge.vv" or (maskable and draw(st.booleans()))
    mask = (
        draw(st.lists(st.integers(0, 1), min_size=N_COLS, max_size=N_COLS))
        if use_mask
        else None
    )
    return mnemonic, a, b, scalar, mask


@st.composite
def program(draw):
    width = draw(st.sampled_from([8, 16, 32]))
    ops = draw(st.lists(instruction(width), min_size=1, max_size=6))
    return width, ops


def snapshot(chain: Chain):
    """All observable bit-level state of a chain."""
    regs = np.stack([chain.peek_register(v) for v in range(8)])
    tags = np.stack([chain.backend.tags_of(s) for s in range(chain.num_subarrays)])
    return regs, tags


@settings(max_examples=60, deadline=None)
@given(program())
def test_backends_bit_identical(prog):
    width, ops = prog
    ref = AssociativeEmulator(num_subarrays=32, num_cols=N_COLS, backend="reference")
    fast = AssociativeEmulator(num_subarrays=32, num_cols=N_COLS, backend="bitplane")

    for mnemonic, a, b, scalar, mask in ops:
        a = np.array(a, dtype=np.int64)
        b = np.array(b, dtype=np.int64) if b is not None else None
        mask_arr = np.array(mask, dtype=np.int64) if mask is not None else None

        r_ref = ref.run(mnemonic, a, b, scalar=scalar, mask=mask_arr, width=width)
        r_fast = fast.run(mnemonic, a, b, scalar=scalar, mask=mask_arr, width=width)

        # Identical results...
        if mnemonic == "vredsum.vs":
            assert r_ref.result == r_fast.result
        else:
            assert np.array_equal(
                np.asarray(r_ref.result), np.asarray(r_fast.result)
            ), mnemonic
        # ...identical charged microoperations...
        assert r_ref.stats.counts == r_fast.stats.counts, mnemonic
        # ...and identical bit-level state (registers and tag latches).
        regs_ref, tags_ref = snapshot(ref.chain)
        regs_fast, tags_fast = snapshot(fast.chain)
        assert np.array_equal(regs_ref, regs_fast), mnemonic
        assert np.array_equal(tags_ref, tags_fast), mnemonic


@settings(max_examples=40, deadline=None)
@given(program())
def test_backends_match_golden(prog):
    """Both backends agree with the plain-arithmetic golden model."""
    width, ops = prog
    for backend in ("reference", "bitplane"):
        emu = AssociativeEmulator(num_subarrays=32, num_cols=N_COLS, backend=backend)
        for mnemonic, a, b, scalar, mask in ops:
            a = np.array(a, dtype=np.int64)
            b = np.array(b, dtype=np.int64) if b is not None else None
            mask_arr = np.array(mask, dtype=np.int64) if mask is not None else None
            old = emu.chain.peek_register(emu.VD)
            run = emu.run(mnemonic, a, b, scalar=scalar, mask=mask_arr, width=width)
            want = golden(
                mnemonic, a, b, scalar=scalar, mask=mask_arr, width=width, old=old
            )
            if mnemonic == "vredsum.vs":
                assert run.result == want
            elif mnemonic in MASK_ONLY:
                assert np.array_equal(
                    np.asarray(run.result) & 1, np.asarray(want) & 1
                )
            else:
                assert np.array_equal(np.asarray(run.result), np.asarray(want))


@settings(max_examples=20, deadline=None)
@given(
    st.integers(2, 4),  # chains
    st.integers(0, 31),  # window seed
    st.sampled_from([8, 16, 32]),
    st.integers(0, 2**32 - 1),
)
def test_csb_window_and_redsum_parity(num_chains, window_seed, width, seed):
    """CSB-level: vector IO, active windows, and redsum agree."""
    rng = np.random.default_rng(seed)
    max_vl = num_chains * N_COLS
    vl = 1 + window_seed % max_vl
    vstart = window_seed % vl
    values = rng.integers(0, 1 << width, size=vl, dtype=np.int64)

    results = {}
    for backend in ("reference", "bitplane"):
        csb = CSB(
            num_chains=num_chains,
            num_subarrays=32,
            num_cols=N_COLS,
            backend=backend,
        )
        csb.write_vector(3, values)
        csb.set_vector_length(vl, vstart)
        results[backend] = (
            csb.read_vector(3, vl).copy(),
            csb.redsum(3, width),
        )
    ref_vec, ref_sum = results["reference"]
    fast_vec, fast_sum = results["bitplane"]
    assert np.array_equal(ref_vec, fast_vec)
    assert ref_sum == fast_sum
    assert ref_sum == int((values[vstart:vl] % (1 << width)).sum())


def test_observer_microop_counters_identical_across_backends():
    """A fixed multi-chain program publishes identical ``csb.microops``
    observer totals under both backends.

    The VCU broadcasts each microoperation to every chain in lockstep,
    so the counters tally *broadcasts*: the reference backend's Python
    walk over the chains charges the sequence once (the rest of the walk
    runs muted), matching the bitplane backend's single ganged record.
    """
    from repro.engine.system import CAPEConfig, CAPESystem

    totals = {}
    for backend in ("reference", "bitplane"):
        observer = Observer()
        system = CAPESystem(
            CAPEConfig("obs-equiv", num_chains=4),
            backend=backend,
            observer=observer,
        )
        system.vsetvl(system.config.max_vl, sew=8)
        system.vmv_vx(1, 17)
        system.vmv_vx(2, 5)
        system.vadd(3, 1, 2)
        system.vmul(4, 1, 2)
        system.vredsum(4, signed=False)
        system.vmseq_vx(5, 1, 17)
        totals[backend] = {
            (labels["op"], labels["flavor"]): counter.value
            for labels, counter in observer.metrics.series("csb.microops")
        }
        # Labels carry the backend name; one series per (op, flavour).
        assert all(
            labels["backend"] == backend
            for labels, _ in observer.metrics.series("csb.microops")
        )
    assert totals["reference"] == totals["bitplane"]
    assert sum(totals["bitplane"].values()) > 0
