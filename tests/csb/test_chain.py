"""Chain-level behaviour: bit-slicing, tag routing, the active window."""

import numpy as np
import pytest

from repro.circuits.microops import Microop
from repro.common.errors import ConfigError
from repro.csb.chain import Chain, MetaRow


def test_element_bits_are_sliced_across_subarrays(chain8):
    chain8.write_element(3, 5, 0b10110010)
    for i in range(8):
        expected = (0b10110010 >> i) & 1
        assert chain8.subarrays[i].read_bit(3, 5) == expected


def test_element_read_write_round_trip(chain8):
    for value in (0, 1, 127, 200, 255):
        chain8.write_element(1, 2, value)
        assert chain8.read_element(1, 2) == value


def test_register_write_read_round_trip(chain8, rng):
    values = rng.integers(0, 256, size=16)
    chain8.write_register(4, values)
    assert chain8.read_register(4).tolist() == values.tolist()


def test_read_and_write_count_as_single_microops(chain8):
    before = chain8.stats.count(Microop.WRITE)
    chain8.write_element(0, 0, 42)
    assert chain8.stats.count(Microop.WRITE) == before + 1
    before = chain8.stats.count(Microop.READ)
    chain8.read_element(0, 0)
    assert chain8.stats.count(Microop.READ) == before + 1


def test_bit_serial_search_touches_one_subarray(chain8):
    chain8.poke_register(1, np.arange(16))
    tags = chain8.search(0, {1: 1})  # bit 0 of register 1
    assert tags.tolist() == [v & 1 for v in range(16)]
    assert chain8.stats.count(Microop.SEARCH, bit_parallel=False) == 1


def test_search_accumulate_next_routes_to_next_subarray(chain8):
    chain8.poke_register(1, np.full(16, 0b1))  # bit 0 set everywhere
    chain8.clear_tags()
    match = chain8.search_accumulate_next(0, {1: 1}, accumulate=False)
    assert match.tolist() == [1] * 16
    assert chain8.tags_of(1).tolist() == [1] * 16
    assert chain8.tags_of(0).tolist() == [0] * 16  # source tags untouched


def test_search_accumulate_next_wraps_at_chain_end(chain8):
    chain8.poke_register(1, np.full(16, 1 << 7))  # MSB set
    chain8.clear_tags()
    chain8.search_accumulate_next(7, {1: 1}, accumulate=False)
    assert chain8.tags_of(0).tolist() == [1] * 16


def test_update_prop_writes_two_subarrays_one_cycle(chain8):
    chain8.poke_register(1, np.zeros(16))
    for sub in chain8.subarrays:
        sub.tags[:] = 1
    before = chain8.stats.total_microops
    chain8.update_prop(2, 1, 1, int(MetaRow.CARRY), 1)
    assert chain8.stats.total_microops == before + 1
    assert chain8.subarrays[2].read_row(1).tolist() == [1] * 16
    assert chain8.subarrays[3].read_row(int(MetaRow.CARRY)).tolist() == [1] * 16


def test_bit_parallel_update_full_select_clears_register(chain8, rng):
    chain8.poke_register(5, rng.integers(0, 256, 16))
    chain8.update_bit_parallel(5, 0, use_tags=False)
    assert chain8.peek_register(5).tolist() == [0] * 16


def test_bit_parallel_values_broadcast_scalar(chain8):
    value = 0b1011_0101
    bits = [(value >> i) & 1 for i in range(8)]
    chain8.update_bit_parallel_values(6, bits, use_tags=False)
    assert chain8.peek_register(6).tolist() == [value] * 16


def test_active_window_masks_updates(chain8):
    chain8.poke_register(1, np.zeros(16))
    chain8.set_active_window(4, 8)  # columns 4..11 active
    chain8.update_bit_parallel(1, 1, use_tags=False)
    expected = [0] * 4 + [255] * 8 + [0] * 4
    assert chain8.peek_register(1).tolist() == expected


def test_power_gated_when_fully_masked(chain8):
    assert not chain8.is_power_gated
    chain8.set_active_window(0, 0)
    assert chain8.is_power_gated


def test_active_window_bounds_checked(chain8):
    with pytest.raises(ConfigError):
        chain8.set_active_window(10, 10)


def test_combine_tags_serial_ands_per_element(chain8):
    chain8.poke_register(1, np.array([3] * 8 + [1] * 8))  # 0b11 vs 0b01
    keys = [{1: 1}, {1: 1}] + [{}] * 6
    chain8.search_bit_parallel(keys)
    combined = chain8.combine_tags_serial(limit=2)
    assert combined.tolist() == [1] * 8 + [0] * 8


def test_redsum_matches_sum(chain8, rng):
    values = rng.integers(0, 256, 16)
    chain8.poke_register(2, values)
    assert chain8.redsum(2, width=8) == int(values.sum())


def test_redsum_figure6_example():
    """Figure 6: four-element two-bit vector (values 2, 1, 3, 0) sums to 6."""
    chain = Chain(num_subarrays=2, num_cols=4)
    chain.poke_register(0, np.array([2, 1, 3, 0]))
    assert chain.redsum(0, width=2) == 6


def test_redsum_respects_active_window(chain8):
    chain8.poke_register(2, np.ones(16))
    chain8.set_active_window(0, 10)
    assert chain8.redsum(2, width=8) == 10


def test_vreg_bounds_checked(chain8):
    with pytest.raises(ConfigError):
        chain8.write_element(32, 0, 1)
    with pytest.raises(ConfigError):
        chain8.search(9, {0: 1})
