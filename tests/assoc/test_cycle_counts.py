"""Measured microoperation counts vs Table I closed forms.

The strongest reproduction claims: our reconstructed microcode *measures*
exactly the published cycle counts for add/sub/logic/vmseq.vv/redsum at
every width, and matches the published asymptotic shape (with documented
constant-factor deltas) for the instructions whose microcode the paper
does not fully specify.
"""

import numpy as np
import pytest

from repro.assoc.instruction_model import InstructionModel

WIDTHS = [4, 8, 16, 32]


@pytest.fixture(scope="module")
def model():
    return InstructionModel(width=32)


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("mnemonic", ["vadd.vv", "vsub.vv"])
def test_add_sub_measure_exactly_8n_plus_2(model, mnemonic, width):
    metrics = model.measure(mnemonic, width=width)
    assert metrics.measured_cycles == 8 * width + 2


@pytest.mark.parametrize("mnemonic,cycles", [("vand.vv", 3), ("vor.vv", 3), ("vxor.vv", 4)])
def test_logic_ops_are_width_independent(model, mnemonic, cycles):
    for width in WIDTHS:
        assert model.measure(mnemonic, width=width).measured_cycles == cycles


@pytest.mark.parametrize("width", WIDTHS)
def test_vmseq_vv_measures_exactly_n_plus_4(model, width):
    assert model.measure("vmseq.vv", width=width).measured_cycles == width + 4


@pytest.mark.parametrize("width", WIDTHS)
def test_vredsum_measures_n(model, width):
    assert model.measure("vredsum.vs", width=width).measured_cycles == width


@pytest.mark.parametrize("width", WIDTHS)
def test_vmseq_vx_close_to_n_plus_1(model, width):
    """Our microcode spends n+3 (explicit preset + final update)."""
    measured = model.measure("vmseq.vx", width=width).measured_cycles
    assert width + 1 <= measured <= width + 3


@pytest.mark.parametrize("width", WIDTHS)
def test_vmslt_is_linear_like_3n_plus_6(model, width):
    """Reconstructed borrow-chain compare: linear in width (4n + 9 here
    vs the paper's 3n + 6 — same shape, constant documented)."""
    measured = model.measure("vmslt.vv", width=width).measured_cycles
    assert 3 * width + 6 <= measured <= 5 * width + 10


def test_vmul_is_quadratic(model):
    """vmul traverses its table a quadratic number of times."""
    m8 = model.measure("vmul.vv", width=8).measured_cycles
    m16 = model.measure("vmul.vv", width=16).measured_cycles
    m32 = model.measure("vmul.vv", width=32).measured_cycles
    # Quadratic growth: doubling the width ~quadruples the cycles.
    assert 3.2 <= m16 / m8 <= 4.8
    assert 3.2 <= m32 / m16 <= 4.8


def test_vmul_does_thousands_of_searches_and_updates(model):
    """Section VI-B: vmul performs more than 3,000 searches and updates."""
    from repro.assoc.emulator import AssociativeEmulator
    from repro.circuits.microops import Microop

    em = AssociativeEmulator(num_subarrays=32, num_cols=32)
    rng = np.random.default_rng(3)
    run = em.run(
        "vmul.vv",
        rng.integers(0, 2**31, 32),
        rng.integers(0, 2**31, 32),
        width=32,
    )
    searches = run.stats.count(Microop.SEARCH)
    updates = (
        run.stats.count(Microop.UPDATE) + run.stats.count(Microop.UPDATE_PROP)
    )
    assert searches + updates > 3000


def test_paper_accounting_uses_closed_forms():
    model = InstructionModel(width=32, accounting="paper")
    assert model.cycles("vadd.vv") == 8 * 32 + 2
    assert model.cycles("vmul.vv") == 4 * 32 * 32 - 4 * 32
    assert model.cycles("vmslt.vv") == 3 * 32 + 6
    assert model.cycles("vmerge.vv") == 4


def test_measured_accounting_uses_emulator_counts():
    model = InstructionModel(width=32, accounting="measured")
    assert model.cycles("vadd.vv") == 258  # matches the closed form
    assert model.cycles("vmul.vv") > 4 * 32 * 32  # documented delta
