"""The extended instruction set: shifts, min/max, vmsne, vrsub.

Property-based sweeps against integer semantics at several widths, plus
aliasing behaviour for the compositions.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.assoc import algorithms as alg
from repro.assoc.emulator import AssociativeEmulator, golden
from repro.common.errors import ConfigError
from repro.csb.chain import Chain

MINMAX = ["vmin.vv", "vmax.vv", "vminu.vv", "vmaxu.vv"]
SHIFTS = ["vsll.vi", "vsrl.vi", "vsra.vi"]


def run_and_check(mnemonic, a, b=None, scalar=None, width=8):
    em = AssociativeEmulator(num_subarrays=width, num_cols=len(a))
    run = em.run(mnemonic, a, b=b, scalar=scalar, width=width)
    expect = golden(mnemonic, a, b=b, scalar=scalar, width=width)
    assert np.array_equal(np.asarray(run.result), np.asarray(expect)), mnemonic
    return run


@pytest.mark.parametrize("mnemonic", MINMAX + ["vmsne.vv"])
def test_minmax_and_msne_fixed(mnemonic):
    a = np.array([0, 255, 127, 128, 5, 5, 200, 1])
    b = np.array([255, 0, 128, 127, 5, 6, 100, 254])
    run_and_check(mnemonic, a, b, width=8)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.integers(0, 255), min_size=4, max_size=8),
    st.lists(st.integers(0, 255), min_size=4, max_size=8),
    st.sampled_from(MINMAX),
)
def test_minmax_property(a, b, mnemonic):
    n = min(len(a), len(b))
    run_and_check(mnemonic, np.array(a[:n]), np.array(b[:n]), width=8)


def test_min_max_signed_vs_unsigned_differ():
    a = np.array([0x80] * 4)  # -128 signed, 128 unsigned
    b = np.array([0x01] * 4)
    signed = run_and_check("vmin.vv", a, b, width=8)
    unsigned = run_and_check("vminu.vv", a, b, width=8)
    assert np.asarray(signed.result).tolist() == [0x80] * 4
    assert np.asarray(unsigned.result).tolist() == [0x01] * 4


def test_minmax_allows_aliasing_destination():
    chain = Chain(num_subarrays=8, num_cols=8)
    a = np.array([9, 1, 200, 40, 7, 250, 0, 128])
    b = np.array([3, 90, 100, 41, 7, 251, 1, 127])
    chain.poke_register(1, a)
    chain.poke_register(2, b)
    alg.vminu_vv(chain, 1, 1, 2, width=8)  # vd aliases vs1
    assert chain.peek_register(1).tolist() == np.minimum(a, b).tolist()


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.integers(0, 255), min_size=4, max_size=8),
    st.integers(0, 7),
    st.sampled_from(SHIFTS),
)
def test_shift_property(a, shamt, mnemonic):
    run_and_check(mnemonic, np.array(a), scalar=shamt, width=8)


def test_sra_sign_extends():
    run = run_and_check("vsra.vi", np.array([0x80, 0x40, 0xFF, 0x01]), scalar=3, width=8)
    assert np.asarray(run.result).tolist() == [0xF0, 0x08, 0xFF, 0x00]


def test_shift_amount_validated():
    chain = Chain(num_subarrays=8, num_cols=4)
    with pytest.raises(ConfigError):
        alg.vsll_vi(chain, 1, 2, 8, width=8)
    with pytest.raises(ConfigError):
        alg.vsrl_vi(chain, 1, 2, -1, width=8)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.integers(0, 255), min_size=4, max_size=8),
    st.integers(0, 255),
)
def test_vrsub_property(a, scalar):
    run_and_check("vrsub.vx", np.array(a), scalar=scalar, width=8)


def test_vrsub_in_place():
    chain = Chain(num_subarrays=8, num_cols=4)
    a = np.array([10, 200, 0, 77])
    chain.poke_register(1, a)
    alg.vrsub_vx(chain, 1, 1, 50, width=8)  # vd aliases vs1
    assert chain.peek_register(1).tolist() == ((50 - a) % 256).tolist()


@pytest.mark.parametrize("width", [4, 8, 16])
def test_minmax_across_widths(width):
    rng = np.random.default_rng(width)
    a = rng.integers(0, 1 << width, size=8)
    b = rng.integers(0, 1 << width, size=8)
    for mnemonic in MINMAX:
        run_and_check(mnemonic, a, b, width=width)


def test_new_instructions_registered():
    from repro.assoc.algorithms import ALGORITHMS

    for mnemonic in MINMAX + SHIFTS + ["vmsne.vv", "vrsub.vx"]:
        assert mnemonic in ALGORITHMS
        info = ALGORITHMS[mnemonic]
        assert info.paper_cycles(32) > 0
