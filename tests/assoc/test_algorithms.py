"""Functional correctness of every associative algorithm.

Each microcoded instruction is executed on the bit-level chain and
compared against plain integer semantics — including property-based
sweeps over random operands and widths, masked variants, aliasing, and
the Figure 1 increment walkthrough.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.assoc import algorithms as alg
from repro.assoc.emulator import AssociativeEmulator, golden
from repro.common.errors import ConfigError
from repro.csb.chain import Chain
from repro.csb.subarray import Subarray

BINARY_OPS = [
    "vadd.vv", "vsub.vv", "vmul.vv", "vand.vv", "vor.vv", "vxor.vv",
    "vmseq.vv", "vmslt.vv", "vmsltu.vv",
]


def run_and_check(mnemonic, a, b=None, scalar=None, mask=None, width=8):
    em = AssociativeEmulator(num_subarrays=width, num_cols=len(a))
    run = em.run(mnemonic, a, b=b, scalar=scalar, mask=mask, width=width)
    expect = golden(mnemonic, a, b=b, scalar=scalar, mask=mask, width=width)
    assert np.array_equal(np.asarray(run.result), np.asarray(expect)), mnemonic
    return run


@pytest.mark.parametrize("mnemonic", BINARY_OPS)
def test_binary_ops_on_fixed_vectors(mnemonic):
    a = np.array([0, 1, 2, 127, 128, 200, 255, 77])
    b = np.array([0, 255, 2, 128, 128, 55, 1, 77])
    run_and_check(mnemonic, a, b, width=8)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(0, 255), min_size=4, max_size=8),
    st.lists(st.integers(0, 255), min_size=4, max_size=8),
    st.sampled_from(BINARY_OPS),
)
def test_binary_ops_property(a, b, mnemonic):
    n = min(len(a), len(b))
    run_and_check(mnemonic, np.array(a[:n]), np.array(b[:n]), width=8)


@settings(max_examples=10, deadline=None)
@given(
    st.integers(2, 16),
    st.lists(st.integers(0, 2**16 - 1), min_size=4, max_size=4),
    st.lists(st.integers(0, 2**16 - 1), min_size=4, max_size=4),
)
def test_add_sub_across_widths(width, a, b):
    mask = (1 << width) - 1
    a = np.array(a) & mask
    b = np.array(b) & mask
    run_and_check("vadd.vv", a, b, width=width)
    run_and_check("vsub.vv", a, b, width=width)


def test_vadd_vx_scalar_forms():
    a = np.array([0, 1, 254, 255, 128, 30, 60, 90])
    for scalar in (0, 1, 127, 255):
        run_and_check("vadd.vx", a, scalar=scalar, width=8)


def test_vmseq_vx_matches_scalar():
    a = np.array([5, 9, 5, 0, 255, 5, 17, 5])
    run = run_and_check("vmseq.vx", a, scalar=5, width=8)
    assert np.asarray(run.result).sum() == 4


def test_vmslt_signed_semantics():
    # Signed 8-bit: 0x80 = -128 < anything; 0x7F = 127 > most.
    a = np.array([0x80, 0x7F, 0x00, 0xFF, 0x01, 0x80, 0x7F, 0x10])
    b = np.array([0x00, 0x80, 0xFF, 0x00, 0x01, 0x80, 0x00, 0x90])
    run_and_check("vmslt.vv", a, b, width=8)


def test_vmsltu_unsigned_semantics():
    a = np.array([0x80, 0x7F, 0x00, 0xFF, 1, 2, 3, 4])
    b = np.array([0x00, 0x80, 0xFF, 0x00, 1, 3, 2, 4])
    run_and_check("vmsltu.vv", a, b, width=8)


def test_vmerge_selects_by_mask():
    a = np.arange(8)
    b = np.arange(8) + 100
    mask = np.array([1, 0, 1, 0, 0, 1, 1, 0])
    run_and_check("vmerge.vv", a, b, mask=mask, width=8)


def test_vmv_forms():
    a = np.array([3, 1, 4, 1, 5, 9, 2, 6])
    run_and_check("vmv.v.v", a, width=8)
    run_and_check("vmv.v.x", a, scalar=42, width=8)


def test_vredsum_full_precision():
    a = np.array([255, 255, 255, 255, 1, 2, 3, 4])
    run = run_and_check("vredsum.vs", a, width=8)
    assert run.result == int(a.sum())


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=1, max_size=16))
def test_vredsum_property(values):
    em = AssociativeEmulator(num_subarrays=8, num_cols=len(values))
    run = em.run("vredsum.vs", np.array(values), width=8)
    assert run.result == sum(values)


def test_masked_vadd_leaves_inactive_elements():
    chain = Chain(num_subarrays=8, num_cols=8)
    a = np.array([1, 2, 3, 4, 5, 6, 7, 8])
    b = np.array([10, 20, 30, 40, 50, 60, 70, 80])
    old = np.array([99] * 8)
    mask = np.array([1, 0, 1, 0, 1, 0, 1, 0])
    chain.poke_register(2, a)
    chain.poke_register(3, b)
    chain.poke_register(1, old)
    chain.poke_register(0, mask)
    alg.broadcast_mask(chain, 0)
    alg.vadd_vv(chain, 1, 2, 3, width=8, masked=True)
    out = chain.peek_register(1)
    expected = np.where(mask == 1, a + b, old)
    assert out.tolist() == expected.tolist()


def test_in_place_vadd_via_scratch():
    chain = Chain(num_subarrays=8, num_cols=8)
    a = np.array([1, 2, 3, 200, 5, 6, 7, 255])
    b = np.array([10, 20, 30, 100, 50, 60, 70, 1])
    chain.poke_register(1, a)
    chain.poke_register(2, b)
    alg.vadd_vv(chain, 1, 1, 2, width=8)  # vd aliases vs1
    assert chain.peek_register(1).tolist() == ((a + b) % 256).tolist()


def test_vmul_rejects_aliasing():
    chain = Chain(num_subarrays=8, num_cols=8)
    with pytest.raises(ConfigError):
        alg.vmul_vv(chain, 1, 1, 2, width=8)


def test_increment_figure1_walkthrough():
    """Figure 1: increment of a 2-bit, 3-element vector (1, 2, 3)."""
    sub = Subarray(num_rows=3, num_cols=3)
    sub.write_row(0, np.array([1, 0, 1], dtype=np.uint8))  # bit 0
    sub.write_row(1, np.array([0, 1, 1], dtype=np.uint8))  # bit 1
    alg.increment_figure1(sub, bit_rows=[0, 1], carry_row=2)
    values = sub.read_row(0).astype(int) + 2 * sub.read_row(1).astype(int)
    assert values.tolist() == [2, 3, 0]  # 1+1, 2+1, 3+1 mod 4


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(0, 15), min_size=1, max_size=8))
def test_increment_figure1_property(values):
    sub = Subarray(num_rows=5, num_cols=len(values))
    bits = np.array(values, dtype=np.int64)
    for r in range(4):
        sub.write_row(r, ((bits >> r) & 1).astype(np.uint8))
    alg.increment_figure1(sub, bit_rows=[0, 1, 2, 3], carry_row=4)
    out = sum(sub.read_row(r).astype(np.int64) << r for r in range(4))
    assert out.tolist() == [(v + 1) % 16 for v in values]


def test_broadcast_mask_replicates_bit0(rng):
    chain = Chain(num_subarrays=8, num_cols=8)
    mask = rng.integers(0, 2, size=8)
    chain.poke_register(0, mask)
    alg.broadcast_mask(chain, 0)
    from repro.csb.chain import MetaRow
    for sub in chain.subarrays:
        assert sub.read_row(int(MetaRow.MASK)).tolist() == mask.tolist()
