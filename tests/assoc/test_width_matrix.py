"""Comprehensive width matrix: every instruction at 4/8/16/32 bits.

One randomised correctness check per (instruction, width) cell — the
coarse safety net behind the targeted property tests.
"""

import numpy as np
import pytest

from repro.assoc.emulator import AssociativeEmulator, golden

WIDTHS = [4, 8, 16, 32]

BINARY = [
    "vadd.vv", "vsub.vv", "vand.vv", "vor.vv", "vxor.vv",
    "vmseq.vv", "vmsne.vv", "vmslt.vv", "vmsltu.vv",
    "vmin.vv", "vmax.vv", "vminu.vv", "vmaxu.vv",
]
SCALAR = ["vadd.vx", "vrsub.vx", "vmseq.vx"]
SHIFT = ["vsll.vi", "vsrl.vi", "vsra.vi"]


def _operands(width, seed):
    rng = np.random.default_rng(seed)
    lanes = 8
    a = rng.integers(0, 1 << width, size=lanes)
    b = rng.integers(0, 1 << width, size=lanes)
    return a, b, int(rng.integers(0, 1 << width)), int(rng.integers(0, width))


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("mnemonic", BINARY)
def test_binary_matrix(mnemonic, width):
    a, b, _, _ = _operands(width, hash((mnemonic, width)) % 2**31)
    em = AssociativeEmulator(num_subarrays=width, num_cols=len(a))
    run = em.run(mnemonic, a, b, width=width)
    expect = golden(mnemonic, a, b, width=width)
    assert np.array_equal(np.asarray(run.result), np.asarray(expect))


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("mnemonic", SCALAR)
def test_scalar_matrix(mnemonic, width):
    a, _, scalar, _ = _operands(width, hash((mnemonic, width)) % 2**31)
    em = AssociativeEmulator(num_subarrays=width, num_cols=len(a))
    run = em.run(mnemonic, a, scalar=scalar, width=width)
    expect = golden(mnemonic, a, scalar=scalar, width=width)
    assert np.array_equal(np.asarray(run.result), np.asarray(expect))


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("mnemonic", SHIFT)
def test_shift_matrix(mnemonic, width):
    a, _, _, shamt = _operands(width, hash((mnemonic, width)) % 2**31)
    em = AssociativeEmulator(num_subarrays=width, num_cols=len(a))
    run = em.run(mnemonic, a, scalar=shamt, width=width)
    expect = golden(mnemonic, a, scalar=shamt, width=width)
    assert np.array_equal(np.asarray(run.result), np.asarray(expect))


@pytest.mark.parametrize("width", WIDTHS)
def test_vmul_matrix(width):
    a, b, _, _ = _operands(width, width)
    em = AssociativeEmulator(num_subarrays=width, num_cols=len(a))
    run = em.run("vmul.vv", a, b, width=width)
    expect = golden("vmul.vv", a, b, width=width)
    assert np.array_equal(np.asarray(run.result), np.asarray(expect))


@pytest.mark.parametrize("width", WIDTHS)
def test_redsum_matrix(width):
    a, _, _, _ = _operands(width, width + 100)
    em = AssociativeEmulator(num_subarrays=width, num_cols=len(a))
    run = em.run("vredsum.vs", a, width=width)
    assert run.result == int(a.sum())


def test_bit_domain_invariant_after_random_microops(rng):
    """Whatever microoperations run, every bitcell stays 0/1 and tags
    stay 0/1 — the physical domain invariant."""
    from repro.csb.chain import Chain

    chain = Chain(num_subarrays=8, num_cols=8)
    for _ in range(200):
        op = rng.integers(0, 5)
        sub = int(rng.integers(0, 8))
        row = int(rng.integers(0, 36))
        if op == 0:
            chain.search(sub, {row: int(rng.integers(0, 2))},
                         accumulate=bool(rng.integers(0, 2)))
        elif op == 1:
            chain.update(sub, row, int(rng.integers(0, 2)))
        elif op == 2:
            chain.update_bit_parallel(row, int(rng.integers(0, 2)),
                                      use_tags=bool(rng.integers(0, 2)))
        elif op == 3:
            chain.write_element(int(rng.integers(0, 32)), int(rng.integers(0, 8)),
                                int(rng.integers(0, 256)))
        else:
            chain.search_accumulate_next(sub, {row: int(rng.integers(0, 2))},
                                         accumulate=bool(rng.integers(0, 2)))
    for sub in chain.subarrays:
        assert set(np.unique(sub.bits)) <= {0, 1}
        assert set(np.unique(sub.tags)) <= {0, 1}
