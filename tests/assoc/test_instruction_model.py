"""Table I derivation: per-instruction metrics and energy calibration."""

import pytest

from repro.assoc.instruction_model import TABLE_I_ROWS, InstructionModel
from repro.common.errors import ConfigError


@pytest.fixture(scope="module")
def model():
    return InstructionModel(width=32)


def test_table_i_covers_the_paper_rows(model):
    rows = model.table_i()
    assert [r.mnemonic for r in rows] == list(TABLE_I_ROWS)


def test_paper_cycles_reproduce_table_i(model):
    expected = {
        "vadd.vv": 258, "vsub.vv": 258, "vmul.vv": 3968,
        "vredsum.vs": 32, "vand.vv": 3, "vor.vv": 3, "vxor.vv": 4,
        "vmseq.vx": 33, "vmseq.vv": 36, "vmslt.vv": 102, "vmerge.vv": 4,
    }
    for row in model.table_i():
        assert row.paper_cycles == expected[row.mnemonic], row.mnemonic


def test_energy_close_to_table_i_for_exact_microcodes(model):
    """Measured per-lane energy lands on the published values for the
    instructions whose microcode we reproduce cycle-exactly."""
    tolerances = {
        "vadd.vv": 0.3, "vsub.vv": 0.3, "vand.vv": 0.15, "vor.vv": 0.15,
        "vxor.vv": 0.15, "vredsum.vs": 0.1, "vmseq.vx": 0.15,
        "vmseq.vv": 0.2,
    }
    for row in model.table_i():
        if row.mnemonic in tolerances:
            assert row.energy_per_lane_pj == pytest.approx(
                row.paper_energy_pj, abs=tolerances[row.mnemonic]
            ), row.mnemonic


def test_arithmetic_is_most_expensive(model):
    """vmul dominates; logic ops are the cheapest (Section VI-B)."""
    by_name = {r.mnemonic: r for r in model.table_i()}
    assert by_name["vmul.vv"].energy_per_lane_pj == max(
        r.energy_per_lane_pj for r in model.table_i()
    )
    assert by_name["vand.vv"].energy_per_lane_pj < 1.0


def test_tt_entry_and_row_metadata(model):
    by_name = {r.mnemonic: r for r in model.table_i()}
    assert by_name["vadd.vv"].tt_entries == 5
    assert by_name["vadd.vv"].search_rows == 3
    assert by_name["vadd.vv"].update_rows == 1
    assert by_name["vmseq.vx"].reduction_cycles == 32
    assert by_name["vmslt.vv"].reduction_cycles == 0


def test_unknown_instruction_rejected(model):
    with pytest.raises(ConfigError):
        model.cycles("vbogus.vv")


def test_unknown_accounting_rejected():
    with pytest.raises(ConfigError):
        InstructionModel(accounting="guess")


def test_measure_caches_at_model_width(model):
    first = model.measure("vand.vv")
    assert model.measure("vand.vv") is first
    assert model.measure("vand.vv", width=8) is not first


def test_measure_cache_keys_on_width(model):
    """Regression: the cache once keyed on the bare mnemonic, so a
    width-8 measure after a width-32 one returned the stale 32-bit
    metrics. Widths must get distinct, stable entries."""
    wide = model.measure("vadd.vv", width=32)
    narrow = model.measure("vadd.vv", width=8)
    assert narrow is not wide
    assert narrow.measured_cycles < wide.measured_cycles  # 8n+2 scales with n
    # Both stay cached under their own key.
    assert model.measure("vadd.vv", width=32) is wide
    assert model.measure("vadd.vv", width=8) is narrow


def test_measurements_shared_across_instances():
    """Two models with identical circuits reuse one measurement — the
    process-wide cache that keeps fresh CAPESystems from re-measuring."""
    one = InstructionModel(width=16)
    two = InstructionModel(width=16)
    assert one.measure("vxor.vv") is two.measure("vxor.vv")


def test_energy_per_lane_j_is_si(model):
    e = model.energy_per_lane_j("vadd.vv")
    assert 1e-12 < e < 1e-10
