"""TTM entry format: encoding limits and circuit constraints."""

import pytest

from repro.assoc.truthtable import TruthTable, TTEntry, UpdateOp
from repro.common.errors import ConfigError, ProtocolError


def test_entry_accepts_up_to_four_search_rows():
    TTEntry(search=(("vs1", 1), ("vs2", 0), ("carry", 1), ("mask", 1)))


def test_entry_rejects_five_search_rows():
    with pytest.raises(ProtocolError):
        TTEntry(
            search=(
                ("vs1", 1), ("vs2", 0), ("carry", 1), ("mask", 1), ("flag", 0),
            )
        )


def test_entry_rejects_two_local_updates():
    """At most one row per subarray may be updated (Section V-A)."""
    with pytest.raises(ProtocolError):
        TTEntry(updates=(UpdateOp("vd", 1), UpdateOp("carry", 0)))


def test_entry_allows_local_plus_next_subarray_update():
    entry = TTEntry(
        updates=(UpdateOp("vd", 1), UpdateOp("carry", 1, next_subarray=True))
    )
    assert entry.has_update


def test_unknown_role_rejected():
    with pytest.raises(ConfigError):
        TTEntry(search=(("bogus", 1),))
    with pytest.raises(ConfigError):
        UpdateOp("bogus", 1)


def test_non_binary_values_rejected():
    with pytest.raises(ConfigError):
        TTEntry(search=(("vs1", 2),))
    with pytest.raises(ConfigError):
        UpdateOp("vd", -1)


def test_table_respects_ttm_capacity():
    entries = tuple(TTEntry(search=(("vs1", 1),)) for _ in range(17))
    with pytest.raises(ProtocolError):
        TruthTable("too-big", entries)


def test_table_reports_row_extremes():
    table = TruthTable(
        "t",
        (
            TTEntry(search=(("vs1", 1),)),
            TTEntry(
                search=(("vs1", 0), ("vs2", 1), ("carry", 1)),
                updates=(UpdateOp("vd", 1), UpdateOp("carry", 1, next_subarray=True)),
            ),
        ),
    )
    assert table.max_search_rows == 3
    assert table.max_update_rows == 2
    assert len(table) == 2


def test_encoded_bits_only_store_involved_rows():
    """Section V-D: entries are encoded efficiently — storage grows with
    the rows actually referenced, plus 4 control bits per entry."""
    small = TruthTable("s", (TTEntry(search=(("vs1", 1),)),))
    big = TruthTable(
        "b",
        (TTEntry(search=(("vs1", 1), ("vs2", 0)), updates=(UpdateOp("vd", 1),)),),
    )
    assert small.encoded_bits() == 1 * 7 + 4
    assert big.encoded_bits() == 3 * 7 + 4
