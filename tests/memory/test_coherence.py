"""MESI snooping bus: invalidations, downgrades, VMU participation."""

import pytest

from repro.memory.cache import MESIState
from repro.memory.coherence import CoherentBus
from repro.memory.hierarchy import AccessType, CacheHierarchy, HierarchyConfig


def make_bus(cores=2):
    config = HierarchyConfig()
    shared = CacheHierarchy.make_shared_l3(config)
    hierarchies = [
        CacheHierarchy(config, shared_l3=shared) for _ in range(cores)
    ]
    return CoherentBus(hierarchies)


def test_write_invalidates_peer_copy():
    bus = make_bus()
    bus.access(0, 0x1000, AccessType.LOAD)
    bus.access(1, 0x1000, AccessType.STORE)
    assert bus.hierarchies[0].l1d.lookup(0x1000) is None
    assert bus.stats.invalidations >= 1


def test_read_downgrades_peer_exclusive_to_shared():
    bus = make_bus()
    bus.access(0, 0x2000, AccessType.LOAD)  # core 0: EXCLUSIVE
    bus.access(1, 0x2000, AccessType.LOAD)
    assert bus.hierarchies[0].l1d.lookup(0x2000) == MESIState.SHARED
    assert bus.stats.downgrades >= 1


def test_read_of_modified_line_triggers_intervention():
    bus = make_bus()
    bus.access(0, 0x3000, AccessType.STORE)  # core 0: MODIFIED
    latency = bus.access(1, 0x3000, AccessType.LOAD)
    assert bus.stats.interventions >= 1
    assert latency > 0


def test_no_snoop_traffic_for_private_data():
    bus = make_bus()
    bus.access(0, 0x4000, AccessType.LOAD)
    bus.access(1, 0x9000, AccessType.LOAD)
    assert bus.stats.invalidations == 0
    assert bus.stats.downgrades == 0


def test_vmu_write_range_invalidates_cached_lines():
    bus = make_bus()
    for addr in range(0x5000, 0x5100, 64):
        bus.access(0, addr, AccessType.LOAD)
    sent = bus.vmu_write_range(0x5000, 0x100)
    assert sent >= 4
    assert bus.hierarchies[0].l1d.lookup(0x5000) is None


def test_vmu_read_range_downgrades_dirty_lines():
    bus = make_bus()
    bus.access(0, 0x6000, AccessType.STORE)
    dirty = bus.vmu_read_range(0x6000, 64)
    assert dirty == 1
    assert bus.hierarchies[0].l1d.lookup(0x6000) == MESIState.SHARED


def test_vmu_traffic_is_trivial_for_disjoint_data():
    """Section V-E: coherence overhead is trivial when the CP and CSB
    share little data."""
    bus = make_bus()
    bus.access(0, 0x100, AccessType.STORE)
    sent = bus.vmu_write_range(0x800000, 4096)
    assert sent == 0


def test_core_index_validated():
    bus = make_bus()
    with pytest.raises(Exception):
        bus.access(5, 0x0, AccessType.LOAD)
