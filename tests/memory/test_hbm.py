"""HBM bandwidth/latency model (Table III: 8 channels x 16 GB/s)."""

import pytest

from repro.common.errors import ConfigError
from repro.memory.hbm import HBM, HBMConfig


def test_aggregate_bandwidth_is_128_gbps():
    config = HBMConfig()
    assert config.total_bandwidth_bytes_per_s == pytest.approx(128e9)


def test_total_capacity_is_4_gib():
    config = HBMConfig()
    assert config.total_capacity_bytes == 8 * 512 * 1024 * 1024


def test_interleaved_transfer_uses_all_channels():
    hbm = HBM()
    t_one = hbm.transfer_time_s(1 << 20, interleaved=False)
    t_all = hbm.transfer_time_s(1 << 20, interleaved=True)
    # 8 channels: ~8x the streaming bandwidth for large transfers.
    ratio = (t_one - hbm.config.base_latency_s) / (t_all - hbm.config.base_latency_s)
    assert ratio == pytest.approx(8, rel=0.01)


def test_latency_floor_for_tiny_transfer():
    hbm = HBM()
    assert hbm.transfer_time_s(4) >= hbm.config.base_latency_s


def test_bandwidth_bound_for_large_transfer():
    hbm = HBM()
    size = 128 << 20  # 128 MiB
    t = hbm.transfer_time_s(size, interleaved=True)
    assert t == pytest.approx(size / 128e9, rel=0.05)


def test_channel_mapping_interleaves_packets():
    hbm = HBM()
    packets = [hbm.channel_of(i * 32) for i in range(16)]
    assert packets == list(range(8)) * 2


def test_bytes_accounted():
    hbm = HBM()
    hbm.transfer_time_s(100)
    hbm.transfer_time_s(28)
    assert hbm.bytes_transferred == 128
    hbm.reset_stats()
    assert hbm.bytes_transferred == 0


def test_negative_transfer_rejected():
    with pytest.raises(ConfigError):
        HBM().transfer_time_s(-1)


def test_invalid_config_rejected():
    with pytest.raises(ConfigError):
        HBMConfig(num_channels=0)
