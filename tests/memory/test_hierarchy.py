"""Three-level hierarchy latencies (Table III) and miss propagation."""

import pytest

from repro.memory.hierarchy import AccessType, CacheHierarchy, HierarchyConfig


def test_l1_hit_latency_is_2_cycles():
    h = CacheHierarchy()
    h.access(0x1000)             # install
    assert h.access(0x1000) == 2


def test_l2_hit_latency_adds_14():
    h = CacheHierarchy()
    h.access(0x1000)
    # Evict from tiny L1? Instead: access enough distinct lines to
    # overflow one L1 set (8 ways) but stay in L2.
    base = 0x1000
    stride = h.l1d.num_sets * h.config.l1_line  # same L1 set
    for i in range(9):
        h.access(base + i * stride)
    latency = h.access(base)  # L1 miss (evicted), L2 hit
    assert latency == 2 + 14


def test_llc_miss_goes_to_hbm():
    h = CacheHierarchy()
    latency = h.access(0x5000)
    # Cold miss walks L1+L2+L3 then HBM (hundreds of cycles).
    assert latency > 2 + 14 + 50


def test_ifetch_uses_l1i():
    h = CacheHierarchy()
    h.access(0x2000, AccessType.IFETCH)
    assert h.l1i.stats.accesses == 1
    assert h.l1d.stats.accesses == 0


def test_no_l3_configuration():
    h = CacheHierarchy(HierarchyConfig(l3_size=0, l2_line=512))
    assert h.l3 is None
    latency = h.access(0x3000)
    assert latency > 2 + 14  # straight to HBM after L2


def test_shared_l3_between_hierarchies():
    config = HierarchyConfig()
    shared = CacheHierarchy.make_shared_l3(config)
    h1 = CacheHierarchy(config, shared_l3=shared)
    h2 = CacheHierarchy(config, shared_l3=shared)
    h1.access(0x8000)
    # Second core misses privately but hits the shared L3.
    latency = h2.access(0x8000)
    assert latency == 2 + 14 + 50


def test_amat_tracks_accesses():
    h = CacheHierarchy()
    h.access(0x100)
    h.access(0x100)
    assert h.accesses == 2
    assert h.amat_cycles() > 2  # cold miss raised the average


def test_reset_stats():
    h = CacheHierarchy()
    h.access(0x100)
    h.reset_stats()
    assert h.accesses == 0
    assert h.l1d.stats.accesses == 0


def test_table_iii_defaults():
    config = HierarchyConfig()
    assert config.l1d_size == 32 * 1024
    assert config.l2_size == 1024 * 1024
    assert config.l3_size == int(5.5 * 1024 * 1024)
    assert config.l3_line == 512  # 512 B LL cache line
    assert config.l1_latency == 2
    assert config.l2_latency == 14
    assert config.l3_latency == 50
