"""Set-associative cache: hits, LRU, writebacks, MESI hooks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.memory.cache import Cache, MESIState


def test_first_access_misses_then_hits():
    cache = Cache(1024, assoc=2, line_bytes=64)
    hit, _ = cache.access(0x100, False)
    assert not hit
    hit, _ = cache.access(0x100, False)
    assert hit


def test_same_line_different_words_hit():
    cache = Cache(1024, assoc=2, line_bytes=64)
    cache.access(0x100, False)
    hit, _ = cache.access(0x13C, False)  # same 64B line
    assert hit


def test_lru_eviction_order():
    # 2-way, one set per way group: addresses mapping to the same set.
    cache = Cache(2 * 64, assoc=2, line_bytes=64)  # 1 set, 2 ways
    cache.access(0 * 64, False)
    cache.access(1 * 64, False)
    cache.access(0 * 64, False)       # refresh line 0
    cache.access(2 * 64, False)       # evicts line 1 (LRU)
    hit, _ = cache.access(0 * 64, False)
    assert hit
    hit, _ = cache.access(1 * 64, False)
    assert not hit


def test_dirty_eviction_reports_writeback():
    cache = Cache(2 * 64, assoc=2, line_bytes=64)
    cache.access(0, True)             # dirty
    cache.access(64, False)
    _, wb = cache.access(128, False)  # evicts dirty line 0
    assert wb == 0
    assert cache.stats.writebacks == 1


def test_clean_eviction_has_no_writeback():
    cache = Cache(2 * 64, assoc=2, line_bytes=64)
    cache.access(0, False)
    cache.access(64, False)
    _, wb = cache.access(128, False)
    assert wb is None


def test_write_sets_modified_state():
    cache = Cache(1024, assoc=2, line_bytes=64)
    cache.access(0x40, True)
    assert cache.lookup(0x40) == MESIState.MODIFIED
    cache2 = Cache(1024, assoc=2, line_bytes=64)
    cache2.access(0x40, False)
    assert cache2.lookup(0x40) == MESIState.EXCLUSIVE


def test_invalidate_via_set_state():
    cache = Cache(1024, assoc=2, line_bytes=64)
    cache.access(0x40, False)
    cache.set_state(0x40, MESIState.INVALID)
    assert cache.lookup(0x40) is None
    assert cache.stats.invalidations_received == 1
    hit, _ = cache.access(0x40, False)
    assert not hit


def test_flush_writes_back_dirty_lines():
    cache = Cache(1024, assoc=2, line_bytes=64)
    cache.access(0x00, True)
    cache.access(0x40, True)
    cache.access(0x80, False)
    assert cache.flush() == 2
    assert cache.flush() == 0  # idempotent


def test_occupancy_counts_valid_lines():
    cache = Cache(1024, assoc=2, line_bytes=64)
    for i in range(5):
        cache.access(i * 64, False)
    assert cache.occupancy == 5
    cache.set_state(0, MESIState.INVALID)
    assert cache.occupancy == 4


def test_geometry_validated():
    with pytest.raises(ConfigError):
        Cache(1000, assoc=3, line_bytes=64)  # not divisible
    with pytest.raises(ConfigError):
        Cache(0, assoc=1)


def test_miss_rate_statistic():
    cache = Cache(1024, assoc=2, line_bytes=64)
    cache.access(0, False)
    cache.access(0, False)
    assert cache.stats.miss_rate == pytest.approx(0.5)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, 4095), min_size=1, max_size=200))
def test_occupancy_never_exceeds_capacity(addrs):
    cache = Cache(512, assoc=2, line_bytes=64)  # 8 lines total
    for addr in addrs:
        cache.access(addr, False)
    assert cache.occupancy <= 8


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 2**16), st.booleans()), min_size=1, max_size=300))
def test_accesses_equals_hits_plus_misses(ops):
    cache = Cache(2048, assoc=4, line_bytes=64)
    for addr, is_write in ops:
        cache.access(addr, is_write)
    assert cache.stats.accesses == len(ops)
    assert cache.stats.hits + cache.stats.misses == len(ops)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, 2**14), min_size=1, max_size=100))
def test_rereferenced_address_always_hits_immediately(addrs):
    cache = Cache(4096, assoc=4, line_bytes=64)
    for addr in addrs:
        cache.access(addr, False)
        hit, _ = cache.access(addr, False)
        assert hit
