"""Section VII cache mode wired into a real hierarchy.

A CAPE tile emulating a victim cache sits behind a (small, for test
purposes) L2: evicted lines land in the CSB and L2 misses probe it,
recovering capacity misses at far below HBM latency.
"""

import numpy as np
import pytest

from repro.memmode.victim_cache import VictimCache
from repro.memory.hierarchy import AccessType, CacheHierarchy, HierarchyConfig

SMALL_L2 = HierarchyConfig(
    l1d_size=4 * 1024,
    l2_size=64 * 1024,
    l3_size=0,
    l2_line=64,
)


def thrash(hierarchy, num_lines, rounds=3):
    total = 0
    for _ in range(rounds):
        for i in range(num_lines):
            total += hierarchy.access(i * 64, AccessType.LOAD)
    return total


def test_victim_cache_recovers_l2_capacity_misses():
    # Working set: 1.5x the L2 -> constant capacity misses without help.
    num_lines = (SMALL_L2.l2_size // 64) * 3 // 2

    plain = CacheHierarchy(SMALL_L2)
    cycles_plain = thrash(plain, num_lines)

    vc = VictimCache(num_rows=1024, line_bytes=64, ways=8)
    helped = CacheHierarchy(SMALL_L2, victim_cache=vc)
    cycles_helped = thrash(helped, num_lines)

    assert vc.stats.hits > 0
    assert cycles_helped < cycles_plain


def test_victim_hits_cost_less_than_memory():
    vc = VictimCache(num_rows=1024, line_bytes=64, ways=8)
    hierarchy = CacheHierarchy(SMALL_L2, victim_cache=vc)
    # Fill beyond L2 so victims spill into the CAPE tile.
    num_lines = (SMALL_L2.l2_size // 64) + 512
    for i in range(num_lines):
        hierarchy.access(i * 64, AccessType.LOAD)
    # Re-touch an early line: evicted from L2, present in the victim
    # cache -> L1 + L2 + victim-hit latency, well below an HBM fill.
    latency = hierarchy.access(0, AccessType.LOAD)
    if vc.stats.hits:
        assert latency <= (
            hierarchy.config.l1_latency
            + hierarchy.config.l2_latency
            + CacheHierarchy.VICTIM_HIT_LATENCY
        )


def test_victim_cache_untouched_when_absent():
    hierarchy = CacheHierarchy(SMALL_L2)
    assert hierarchy.victim_cache is None
    hierarchy.access(0)  # no crash, no probe
