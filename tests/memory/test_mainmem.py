"""Functional word memory."""

import numpy as np
import pytest

from repro.common.errors import CapacityError, ConfigError
from repro.memory.mainmem import WordMemory


def test_zero_initialised():
    mem = WordMemory(1024)
    assert mem.read_words(0, 4).tolist() == [0, 0, 0, 0]


def test_write_read_round_trip(rng):
    mem = WordMemory(1 << 16)
    values = rng.integers(0, 2**31, size=100)
    mem.write_words(0x400, values)
    assert mem.read_words(0x400, 100).tolist() == values.tolist()


def test_single_word_access():
    mem = WordMemory(1024)
    mem.write_word(8, 1234)
    assert mem.read_word(8) == 1234


def test_unaligned_address_rejected():
    mem = WordMemory(1024)
    with pytest.raises(ConfigError):
        mem.read_word(3)
    with pytest.raises(ConfigError):
        mem.write_word(5, 1)


def test_out_of_range_rejected():
    mem = WordMemory(64)
    with pytest.raises(CapacityError):
        mem.read_words(60, 2)
    with pytest.raises(CapacityError):
        mem.write_words(64, np.array([1]))


def test_invalid_size_rejected():
    with pytest.raises(ConfigError):
        WordMemory(10)
    with pytest.raises(ConfigError):
        WordMemory(0)
