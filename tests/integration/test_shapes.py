"""End-to-end shape assertions: the paper's qualitative results.

These tests assert the *relationships* the paper reports (who wins, in
which direction design points scale) at reduced input sizes, so the full
evaluation in ``benchmarks/`` is backed by always-on regression checks.
"""

import numpy as np
import pytest

from repro.baseline.multicore import Multicore
from repro.baseline.ooo import OoOCore
from repro.baseline.simd import SIMDConfig, SIMDCore
from repro.engine.system import CAPE131K, CAPE32K, CAPEConfig, CAPESystem
from repro.workloads.micro import VVAdd, IdxSearch
from repro.workloads.phoenix import Histogram, KMeans, WordCount


def cape_seconds(workload_cls, config, **kwargs):
    wl = workload_cls(**kwargs)
    return wl.run_cape(CAPESystem(config)).seconds


def test_cape_beats_ooo_on_streaming_add():
    wl = VVAdd(n=1 << 15)
    baseline = OoOCore().run(wl.scalar_trace()).seconds
    cape = cape_seconds(VVAdd, CAPE32K, n=1 << 15)
    assert baseline / cape > 2


def test_histogram_speedup_roughly_13x():
    """Section II quotes 13x for the brute-force search histogram."""
    wl = Histogram(n=1 << 17)
    baseline = OoOCore().run(wl.scalar_trace()).seconds
    cape = cape_seconds(Histogram, CAPE32K, n=1 << 17)
    assert 6 < baseline / cape < 30


def test_kmeans_capacity_cliff():
    """kmeans fits CAPE131k's CSB but not CAPE32k's: the bigger design
    point gains far more than the 2x area would suggest."""
    args = dict(points=3000, dims=4, k=3, iterations=3)
    small_fits = CAPEConfig(name="fits", num_chains=128)      # 4,096 lanes
    small_spills = CAPEConfig(name="spills", num_chains=64)   # 2,048 lanes
    t_fits = cape_seconds(KMeans, small_fits, **args)
    t_spills = cape_seconds(KMeans, small_spills, **args)
    # The resident configuration is disproportionately faster (loads once,
    # and halves the per-iteration tile count).
    assert t_spills / t_fits > 2.0


def test_variable_intensity_apps_scale_worse():
    """wrdcnt's serial parse/post-processing caps its gain from a 4x
    larger CSB, unlike the constant-intensity histogram."""
    args = dict(n=1 << 15)
    hist_small = cape_seconds(Histogram, CAPEConfig(name="s", num_chains=64), **args)
    hist_big = cape_seconds(Histogram, CAPEConfig(name="b", num_chains=256), **args)
    wc_small = cape_seconds(WordCount, CAPEConfig(name="s", num_chains=64), **args)
    wc_big = cape_seconds(WordCount, CAPEConfig(name="b", num_chains=256), **args)
    hist_gain = hist_small / hist_big
    wc_gain = wc_small / wc_big
    assert hist_gain > wc_gain


def test_idxsrch_limited_by_serial_postprocessing():
    """More matches -> more serialized work -> smaller speedup."""
    few = IdxSearch(n=1 << 14, match_rate=0.001)
    many = IdxSearch(n=1 << 14, match_rate=0.05)
    base_few = OoOCore().run(few.scalar_trace()).seconds
    base_many = OoOCore().run(many.scalar_trace()).seconds
    cape_few = IdxSearch(n=1 << 14, match_rate=0.001).run_cape(CAPESystem(CAPE32K)).seconds
    cape_many = IdxSearch(n=1 << 14, match_rate=0.05).run_cape(CAPESystem(CAPE32K)).seconds
    assert base_few / cape_few > base_many / cape_many


def test_cape_beats_sve512_on_data_parallel_code():
    """Figure 12's headline: CAPE32k clearly outruns the 512-bit SVE
    configuration on vectorisable code."""
    wl = VVAdd(n=1 << 15)
    core = SIMDCore(SIMDConfig(vector_bits=512))
    sve = core.run(wl.simd_trace(core.lanes)).seconds
    cape = cape_seconds(VVAdd, CAPE32K, n=1 << 15)
    assert sve / cape > 1.5


def test_multicore_reference_scales_on_parallel_apps():
    wl = Histogram(n=1 << 15)
    one = OoOCore().run(wl.scalar_trace()).seconds
    three = Multicore(3).run(Histogram(n=1 << 15).scalar_trace()).seconds
    assert one / three > 1.5
