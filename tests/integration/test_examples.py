"""Smoke tests: the shipped examples keep working.

The fast examples run in-process (imported by path); the long-running
capacity studies are covered by the integration shape tests instead.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quickstart_stops_run(capsys):
    quickstart = load_example("quickstart")
    quickstart.stop_1_figure1_increment()
    quickstart.stop_2_chain_level_vadd()
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "8n + 2" in out


def test_memory_modes_example(capsys):
    memory_modes = load_example("memory_modes")
    memory_modes.scratchpad_demo()
    memory_modes.kv_demo()
    memory_modes.victim_cache_demo()
    out = capsys.readouterr().out
    assert "capacity" in out
    assert "lookup" in out


def test_riscv_dotprod_example(capsys):
    dotprod = load_example("riscv_dotprod")
    dotprod.main()
    out = capsys.readouterr().out
    assert "vector instructions" in out


def test_tiled_chip_scenes(capsys):
    tiled = load_example("tiled_chip")
    tiled.scene_3_key_value()
    out = capsys.readouterr().out
    assert "key-value" in out or "capacity" in out
