"""The chaos invariant: a seeded fault storm never changes the answers.

One seeded :meth:`FaultPlan.chaos` kills a device mid-stream, peppers
another with transient transfer corruption (enough to quarantine it),
plants stuck bitcells on a third, and corrupts a spill slab. A 50-job
stream over the pool must complete with results identical to a
fault-free run, the observer must show the injections and the healing,
and a second run from the same seed must replay bit-for-bit.
"""

import numpy as np
import pytest

from repro.engine.system import CAPEConfig
from repro.faults import FaultPlan
from repro.obs import Observer
from repro.runtime.job import Footprint, Job, JobState, SegmentedJob
from repro.runtime.pool import DevicePool

NANO = CAPEConfig(name="nano", num_chains=8)  # 256 lanes

SEED = 0xCA9E
KILL_CYCLE = 3_000.0  # the doomed device dies mid-stream


def make_jobs():
    """50 fresh jobs: loads, computes, and one spill-served segmented job."""
    jobs = []
    for i in range(49):
        rng = np.random.default_rng(1000 + i)
        if i % 2 == 0:
            data = rng.integers(0, 1 << 20, size=64).astype(np.int64)

            def body(system, data=data):
                system.memory.write_words(0x1000, data)
                system.vsetvl(64)
                system.vle(1, 0x1000)
                system.vadd(2, 1, 1)
                return int(system.vredsum(2, signed=False))

            golden = int(2 * data.sum())
        else:
            k = int(rng.integers(1, 1 << 16))

            def body(system, k=k):
                system.vsetvl(32)
                system.vmv_vx(1, k)
                system.vadd(2, 1, 1)
                return int(system.vredsum(2, signed=False))

            golden = 32 * 2 * k
        # Odd jobs run on the bit-level backend, so the planted stuck
        # bitcells actually sit under live microcode.
        jobs.append(
            Job(f"job{i:02d}", body, Footprint(lanes=64, resident=True),
                golden=golden, backend="bitplane" if i % 2 else None)
        )

    # One oversized job: spill-served over several passes, so the
    # corrupted spill slab and the parity words actually engage.
    rng = np.random.default_rng(7)
    data = rng.integers(0, 1 << 16, size=400).astype(np.int64)

    def segment(system, offset, vl, pass_index):
        if pass_index == 0:
            system.memory.write_words(0x2000 + 4 * offset,
                                      data[offset:offset + vl])
            system.vle(1, 0x2000 + 4 * offset)
            system.vmv_vx(2, 0)
        system.vadd(2, 2, 1)
        if pass_index == 2:
            return int(system.vredsum(2, signed=False))

    jobs.append(
        SegmentedJob(
            "segmented",
            total_lanes=400,
            segment_body=segment,
            live_vregs=(1, 2),
            passes=3,
            finalize=sum,
            golden=int(3 * data.sum()),
        )
    )
    return jobs


def run_stream(
    fault_plan=None, observer=None, parallelism=1,
    superplan=False, plan_affinity=False,
):
    pool = DevicePool(
        (NANO, NANO, NANO),
        memory_bytes=1 << 26,  # room for the spill slab base
        fault_plan=fault_plan,
        observer=observer,
        failure_threshold=2,
        quarantine_cycles=2_000.0,
        retry_backoff_cycles=300.0,
        max_retries=4,
        parallelism=parallelism,
        superplan=superplan,
        plan_affinity=plan_affinity,
    )
    jobs = pool.submit_stream(make_jobs(), interarrival_cycles=40.0)
    report = pool.run(max_events=100_000)
    return pool, jobs, report


def chaos_plan():
    return FaultPlan.chaos(seed=SEED, devices=3, kill_cycle=KILL_CYCLE)


def test_chaos_stream_completes_identical_to_fault_free():
    _, clean_jobs, clean_report = run_stream()
    obs = Observer()
    pool, jobs, report = run_stream(fault_plan=chaos_plan(), observer=obs)

    # Every job completed, validated, with the same output as fault-free.
    assert report.completed == 50 and report.failed == 0
    assert all(j.state is JobState.DONE for j in jobs)
    clean_outputs = {j.name: j.result.output for j in clean_jobs}
    for job in jobs:
        assert job.result.output == clean_outputs[job.name], job.name

    # The storm actually happened: injections, retries, a quarantine,
    # and exactly one device death are visible in the observer.
    snapshot = obs.metrics.snapshot()

    def total(metric, kind):
        return sum(
            v for (name, labels), v in snapshot.items()
            if name == metric and ("kind", kind) in labels
        )

    assert total("faults.injected", "device_kill") == 1
    assert total("faults.injected", "transfer") > 0
    assert total("faults.injected", "stuck_bit") > 0
    assert total("faults.injected", "slab") > 0
    # The corrupted slabs were *caught* by parity, not silently restored.
    assert total("faults.detected", "spill_parity") > 0
    assert report.retries > 0
    assert obs.metrics.value("runtime.retries") == report.retries
    assert report.quarantines > 0
    assert obs.metrics.value("runtime.quarantined") == report.quarantines
    assert report.device_deaths == 1
    dead = [d for d in pool.devices if not d.health.alive]
    assert len(dead) == 1
    assert dead[0].injector.dead


def test_chaos_replays_bit_for_bit_from_the_seed():
    def fingerprint():
        _, jobs, report = run_stream(fault_plan=chaos_plan())
        return (
            [(r.name, r.state, r.attempts, r.device_id,
              r.start_cycle, r.finish_cycle) for r in report.jobs],
            report.retries,
            report.quarantines,
            report.device_deaths,
            report.makespan_cycles,
            [j.result.output for j in jobs],
        )

    assert fingerprint() == fingerprint()


def test_chaos_plan_itself_is_reproducible():
    assert chaos_plan() == chaos_plan()
    assert chaos_plan().as_dict() == chaos_plan().as_dict()


@pytest.mark.slow
def test_chaos_stream_identical_with_superplans():
    """The full storm replayed with whole-kernel superplans (and plan
    affinity) enabled: devices with attached injectors are ineligible
    per dispatch, so they keep the per-primitive fault-divergence
    ladder, while clean devices fuse their kernels — and nothing about
    the schedule, outputs, or healing ledger may move."""

    def fingerprint(**kwargs):
        _, jobs, report = run_stream(fault_plan=chaos_plan(), **kwargs)
        return (
            [(r.name, r.state, r.attempts, r.device_id,
              r.start_cycle, r.finish_cycle) for r in report.jobs],
            report.completed,
            report.failed,
            report.retries,
            report.quarantines,
            report.device_deaths,
            report.makespan_cycles,
            [j.result.output for j in jobs],
        )

    baseline = fingerprint()
    fused = fingerprint(superplan="auto", plan_affinity=True)
    assert fused == baseline


@pytest.mark.slow
def test_chaos_stream_identical_under_parallel_pool():
    """The full storm replayed with ``parallelism=4``: placement, job
    outputs, retries, quarantines, and the device death must all match
    the sequential run — worker threads only move the *host* execution
    of already-placed jobs, never the simulated schedule (the
    determinism contract in docs/PERFORMANCE.md)."""

    def fingerprint(parallelism):
        obs = Observer()
        pool, jobs, report = run_stream(
            fault_plan=chaos_plan(), observer=obs, parallelism=parallelism
        )
        return (
            [(r.name, r.state, r.attempts, r.device_id,
              r.start_cycle, r.finish_cycle) for r in report.jobs],
            report.completed,
            report.failed,
            report.retries,
            report.quarantines,
            report.device_deaths,
            report.makespan_cycles,
            [j.result.output for j in jobs],
            obs.metrics.total("faults.injected"),
        )

    sequential = fingerprint(1)
    parallel = fingerprint(4)
    assert parallel == sequential
