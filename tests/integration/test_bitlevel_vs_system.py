"""Cross-fidelity validation: bit-level CSB vs functional system model.

The system simulator executes instructions functionally and charges
modelled timing; the bit-level CSB actually performs every microop. Both
must agree on the architectural result.
"""

import numpy as np
import pytest

from repro.assoc import algorithms as alg
from repro.csb.csb import CSB
from repro.engine.system import CAPEConfig, CAPESystem


@pytest.mark.parametrize(
    "mnemonic,func",
    [
        ("vadd", lambda c, vd, a, b: alg.vadd_vv(c, vd, a, b, width=8)),
        ("vsub", lambda c, vd, a, b: alg.vsub_vv(c, vd, a, b, width=8)),
        ("vand", alg.vand_vv),
        ("vor", alg.vor_vv),
        ("vxor", alg.vxor_vv),
    ],
)
def test_bit_level_csb_agrees_with_system_model(mnemonic, func, rng):
    n = 32  # one chain x 2 CSB chains at 16 columns
    a = rng.integers(0, 256, size=n)
    b = rng.integers(0, 256, size=n)

    # Bit-level: run the microcode on every chain of a small CSB.
    csb = CSB(num_chains=2, num_subarrays=8, num_cols=16)
    csb.poke_vector(1, a)
    csb.poke_vector(2, b)
    for chain in csb.chains:
        func(chain, 3, 1, 2)
    bit_level = csb.peek_vector(3)

    # System model: same operation on an 8-bit functional machine.
    cape = CAPESystem(
        CAPEConfig(name="t", num_chains=2, cols_per_chain=16, element_bits=8)
    )
    cape.vsetvl(n)
    cape.vregs[1, :n] = a
    cape.vregs[2, :n] = b
    getattr(cape, mnemonic)(3, 1, 2)
    system = cape.read_vreg(3)

    assert bit_level.tolist() == system.tolist()


def test_redsum_agrees_across_fidelities(rng):
    n = 32
    values = rng.integers(0, 200, size=n)
    csb = CSB(num_chains=2, num_subarrays=8, num_cols=16)
    csb.poke_vector(1, values)
    bit_level = csb.redsum(1, width=8)

    cape = CAPESystem(
        CAPEConfig(name="t", num_chains=2, cols_per_chain=16, element_bits=8)
    )
    cape.vsetvl(n)
    cape.vregs[1, :n] = values
    # The hardware echo/pop-count reduction sums the unsigned encodings.
    assert bit_level == cape.vredsum(1, signed=False) == int(values.sum())
