"""Property-based system-level tests: masked ops and active windows."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.bitutils import to_signed
from repro.engine.system import CAPEConfig, CAPESystem


def make_cape():
    return CAPESystem(CAPEConfig(name="t", num_chains=8))  # 256 lanes


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(0, 2**32 - 1), min_size=2, max_size=64),
    st.lists(st.integers(0, 2**32 - 1), min_size=2, max_size=64),
    st.lists(st.integers(0, 1), min_size=2, max_size=64),
    st.sampled_from(["vadd", "vsub", "vmul", "vand", "vor", "vxor"]),
)
def test_masked_binary_ops_preserve_inactive(a, b, m, op):
    n = min(len(a), len(b), len(m))
    cape = make_cape()
    cape.vsetvl(n)
    av = np.array(a[:n], dtype=np.int64)
    bv = np.array(b[:n], dtype=np.int64)
    mv = np.array(m[:n], dtype=np.int64)
    cape.vregs[1, :n] = av
    cape.vregs[2, :n] = bv
    cape.vregs[0, :n] = mv
    cape.vregs[7, :n] = 42
    getattr(cape, op)(7, 1, 2, mask=0)
    py_op = {
        "vadd": lambda x, y: (x + y) % (1 << 32),
        "vsub": lambda x, y: (x - y) % (1 << 32),
        "vmul": lambda x, y: (x * y) % (1 << 32),
        "vand": lambda x, y: x & y,
        "vor": lambda x, y: x | y,
        "vxor": lambda x, y: x ^ y,
    }[op]
    expected = np.where(mv == 1, py_op(av, bv), 42)
    assert cape.read_vreg(7).tolist() == expected.tolist()


@settings(max_examples=25, deadline=None)
@given(
    st.integers(1, 200),
    st.integers(0, 199),
)
def test_active_window_never_touches_tail_or_prefix(vl, vstart):
    vstart = min(vstart, vl)
    cape = make_cape()
    cape.vregs[1, :] = 7
    cape.vsetvl(vl)
    cape.set_vstart(vstart)
    cape.vmv_vx(1, 9)
    values = cape.vregs[1]
    assert (values[:vstart] == 7).all()
    assert (values[vstart:vl] == 9).all()
    assert (values[vl:] == 7).all()


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(-(2**31), 2**31 - 1), min_size=1, max_size=64))
def test_redsum_signed_matches_python(values):
    cape = make_cape()
    n = len(values)
    cape.vsetvl(n)
    cape.vregs[1, :n] = np.array(values, dtype=np.int64) & 0xFFFFFFFF
    assert cape.vredsum(1) == sum(values)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=64),
    st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=64),
)
def test_compare_merge_consistency(a, b):
    """vmerge(vmslt(a,b) ? a : b) == elementwise signed minimum."""
    n = min(len(a), len(b))
    cape = make_cape()
    cape.vsetvl(n)
    av = np.array(a[:n], dtype=np.int64)
    bv = np.array(b[:n], dtype=np.int64)
    cape.vregs[1, :n] = av
    cape.vregs[2, :n] = bv
    cape.vmslt(0, 1, 2)
    cape.vmerge(3, 1, 2, vm=0)
    expected = np.where(
        to_signed(av, 32) < to_signed(bv, 32), av, bv
    )
    assert cape.read_vreg(3).tolist() == expected.tolist()
    # And it agrees with the dedicated vmin.
    cape.vmin(4, 1, 2)
    assert cape.read_vreg(4).tolist() == expected.tolist()
