"""Run-stats summary rendering."""

import pytest

from repro.engine.system import CAPEConfig, CAPESystem


def test_summary_reports_breakdown(tiny_cape):
    tiny_cape.vsetvl(500)
    tiny_cape.vle(1, 0)
    tiny_cape.vadd(2, 1, 1)
    text = tiny_cape.stats.summary()
    assert "cycles" in text
    assert "CSB compute" in text
    assert "vector memory" in text
    assert "uJ" in text
    assert "1 memory instructions" in text


def test_summary_on_fresh_system():
    cape = CAPESystem(CAPEConfig(name="t", num_chains=8))
    text = cape.stats.summary()
    assert "0 vector" in text
