"""Section V-C: restartable vector memory instructions (fault injection)."""

import numpy as np
import pytest

from repro.engine.system import CAPEConfig, CAPESystem
from repro.engine.vmu import PAGE_BYTES, PageFault


@pytest.fixture
def paged_cape():
    cape = CAPESystem(CAPEConfig(name="t", num_chains=64))  # 2,048 lanes
    cape.vmu.enable_paging()
    return cape


def test_unmapped_page_raises_at_faulting_element(paged_cape):
    cape = paged_cape
    cape.vmu.map_range(0, PAGE_BYTES)  # first page only
    with pytest.raises(PageFault) as exc:
        cape.vmu.load(0, 2048)  # 8 KiB spans two pages
    assert exc.value.element_index == PAGE_BYTES // 4


def test_vle_restarts_and_completes(paged_cape, rng):
    cape = paged_cape
    values = rng.integers(0, 2**31, size=2000)
    cape.memory.write_words(0, values)
    cape.vmu.map_range(0, PAGE_BYTES)  # the rest faults on first touch
    cape.vsetvl(2000)
    cape.vle(1, 0)
    assert cape.read_vreg(1).tolist() == values.tolist()
    assert cape.stats.page_faults == 1  # 8000 B = 2 pages, one unmapped
    assert cape.vstart == 0  # restored after completion


def test_vse_restarts_and_completes(paged_cape, rng):
    cape = paged_cape
    values = rng.integers(0, 2**31, size=2048)
    cape.vsetvl(2048)
    cape.vregs[2, :2048] = values
    cape.vmu.map_range(0, PAGE_BYTES)
    cape.vse(2, 0)
    assert cape.memory.read_words(0, 2048).tolist() == values.tolist()
    assert cape.stats.page_faults == 1


def test_multiple_faults_in_one_instruction(paged_cape, rng):
    cape = paged_cape
    n = 2048  # 8 KiB: pages 0 and 1 from a page-aligned base
    values = rng.integers(0, 2**31, size=n)
    cape.memory.write_words(0, values)
    # Nothing mapped: every page faults once.
    cape.vsetvl(n)
    cape.vle(1, 0)
    assert cape.read_vreg(1).tolist() == values.tolist()
    assert cape.stats.page_faults == 2


def test_fault_handler_cost_is_charged(paged_cape, rng):
    cape = paged_cape
    cape.memory.write_words(0, rng.integers(0, 100, size=1024))
    cape.vsetvl(1024)
    before = cape.stats.cycles
    cape.vle(1, 0)
    with_fault = cape.stats.cycles - before

    clean = CAPESystem(CAPEConfig(name="t", num_chains=64))
    clean.memory.write_words(0, np.zeros(1024))
    clean.vsetvl(1024)
    before = clean.stats.cycles
    clean.vle(1, 0)
    without = clean.stats.cycles - before
    assert with_fault > without + 1000


def test_no_paging_means_no_faults(rng):
    cape = CAPESystem(CAPEConfig(name="t", num_chains=64))
    cape.vsetvl(1024)
    cape.vle(1, 0)  # paging model off: never faults
    assert cape.stats.page_faults == 0


def test_indexed_loads_are_future_work(paged_cape):
    with pytest.raises(NotImplementedError):
        paged_cape.vmu.load_indexed(0, [1, 2, 3])
