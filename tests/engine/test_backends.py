"""System-level execution backends: selection, cross-validation, fallback.

With ``backend=`` set, every supported vector intrinsic also executes as
associative microcode on a bit-level CSB mirror; divergence raises
:class:`ProtocolError`. These tests exercise the selection API, the
validated path, the functional fallback, and divergence detection.
"""

import numpy as np
import pytest

from repro.common.errors import ConfigError, ProtocolError
from repro.engine.system import CAPEConfig, CAPESystem
from repro.runtime import DevicePool, Footprint, Job

TINY = CAPEConfig(name="tiny", num_chains=4, cols_per_chain=8)


def make_cape(backend):
    return CAPESystem(TINY, backend=backend)


def load_vreg(cape, vreg, values, base=0x1000):
    values = np.asarray(values)
    cape.vmu.map_range(base, 4 * 256)
    cape.vmu.store(base, values)
    cape.vle(vreg, base)


@pytest.mark.parametrize("backend", ["reference", "bitplane"])
def test_mixed_program_cross_validates(backend):
    cape = make_cape(backend)
    cape.vsetvl(20)
    rng = np.random.default_rng(11)
    a = rng.integers(0, 2**31, 20, dtype=np.int64)
    b = rng.integers(1, 2**31, 20, dtype=np.int64)
    load_vreg(cape, 1, a)
    load_vreg(cape, 2, b)
    load_vreg(cape, 0, rng.integers(0, 2, 20, dtype=np.int64))

    cape.vadd(3, 1, 2)
    cape.vsub(4, 1, 2, mask=0)
    cape.vmul(5, 1, 2)
    cape.vadd_vx(6, 1, -3, mask=0)  # masked scalar add: guarded microcode
    cape.vsll_vi(7, 1, 2)
    cape.vmslt(8, 1, 2)
    cape.vmerge(9, 1, 2, vm=0)

    assert np.array_equal(cape.read_vreg(3), (a + b) % 2**32)
    assert cape.vredsum(3, signed=False) == int(((a + b) % 2**32).sum())
    assert cape.vmask_popcount(8) == int(cape.vregs[8, :20].sum())
    assert cape.backend == backend


def test_backend_window_and_sew():
    cape = make_cape("bitplane")
    cape.vsetvl(16, sew=8)
    a = np.arange(16) * 3 % 256
    load_vreg(cape, 1, a)
    cape.set_vstart(5)
    cape.vadd_vx(2, 1, 7)
    cape.vsra_vi(3, 1, 2)
    cape.set_vstart(0)
    want = (a + 7) % 256
    got = cape.read_vreg(2)
    assert np.array_equal(got[5:16], want[5:16])
    assert np.array_equal(got[:5], np.zeros(5, dtype=np.int64))


def test_unsupported_forms_fall_back():
    """Masked vmul and aliased operands have no microcode: the functional
    result is mirrored instead, and execution continues validated."""
    cape = make_cape("bitplane")
    cape.vsetvl(12)
    a = np.arange(1, 13)
    load_vreg(cape, 1, a)
    load_vreg(cape, 2, a * 2)
    load_vreg(cape, 0, np.array([1, 0] * 6))
    cape.vmul(3, 1, 2, mask=0)        # masked vmul: fallback
    cape.vadd(4, 1, 1)                # vs1 == vs2 aliasing: fallback
    cape.vadd(4, 4, 2)                # vd == vs1 aliasing: fallback
    cape.vadd(5, 4, 1)                # back on the validated path
    want4 = (a + a + a * 2) % 2**32
    assert np.array_equal(cape.read_vreg(5), (want4 + a) % 2**32)
    assert cape.vredsum(5, signed=False) == int(((want4 + a) % 2**32).sum())


def test_divergence_raises_protocol_error():
    cape = make_cape("bitplane")
    cape.vsetvl(8)
    load_vreg(cape, 1, np.arange(8))
    load_vreg(cape, 2, np.arange(8) * 5)
    # Corrupt the mirror behind the system's back: the next validated
    # intrinsic computes from stale bits and must be caught.
    cape._bitengine.sync_register(1, np.arange(8) + 99)
    with pytest.raises(ProtocolError):
        cape.vadd(3, 1, 2)


def test_set_backend_switching_and_reset():
    cape = make_cape(None)
    assert cape.backend is None
    cape.vsetvl(10)
    load_vreg(cape, 1, np.arange(10))
    cape.set_backend("bitplane")      # state is mirrored on attach
    assert cape.backend == "bitplane"
    cape.vadd_vx(2, 1, 4)
    assert np.array_equal(cape.read_vreg(2), np.arange(10) + 4)
    cape.set_backend("reference")
    cape.vadd_vx(3, 1, 1)
    assert np.array_equal(cape.read_vreg(3), np.arange(10) + 1)
    cape.set_backend(None)
    assert cape.backend is None
    cape.reset()
    assert not cape.vregs.any()
    with pytest.raises(ConfigError):
        cape.set_backend("warp-drive")


def test_job_and_pool_backend_threading():
    def body(system):
        system.vsetvl(8)
        system.vmu.map_range(0x100, 4 * 32)
        system.vmu.store(0x100, np.arange(8))
        system.vle(1, 0x100)
        system.vadd_vx(2, 1, 10)
        return system.vredsum(2, signed=False)

    golden = int((np.arange(8) + 10).sum())
    pool = DevicePool(configs=[TINY, TINY], backend="bitplane")
    jobs = [
        Job("validated", body, Footprint(lanes=8), golden=golden),
        Job("override", body, Footprint(lanes=8), golden=golden,
            backend="reference"),
    ]
    for job in jobs:
        pool.submit(job)
    pool.run()
    for job in jobs:
        assert job.result.error is None
        assert job.result.validated
    # The per-job override is restored after execution.
    assert all(d.system.backend == "bitplane" for d in pool.devices)
