"""Property-based VMU tests: round trips and timing monotonicity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.vmu import VMU, VMUConfig
from repro.memory.hbm import HBM
from repro.memory.mainmem import WordMemory


def make_vmu():
    return VMU(1024, HBM(), WordMemory(1 << 22), VMUConfig())


@settings(max_examples=25, deadline=None)
@given(
    st.integers(0, 1 << 18).map(lambda a: a * 4),
    st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=200),
)
def test_store_load_round_trip(addr, values):
    vmu = make_vmu()
    arr = np.array(values, dtype=np.int64)
    vmu.store(addr, arr)
    out, _ = vmu.load(addr, len(arr))
    assert out.tolist() == arr.tolist()


@settings(max_examples=25, deadline=None)
@given(
    st.integers(1, 64),
    st.integers(1, 2000),
)
def test_replica_load_tiles_exactly(chunk, vl):
    vmu = make_vmu()
    base = np.arange(chunk, dtype=np.int64) + 1
    vmu.memory.write_words(0, base)
    out, _ = vmu.load_replica(0, chunk, vl)
    assert len(out) == vl
    for i in range(vl):
        assert out[i] == base[i % chunk]


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 4000), st.integers(1, 4000))
def test_transfer_cycles_monotone_in_size(n1, n2):
    vmu = make_vmu()
    _, c1 = vmu.load(0, min(n1, n2))
    _, c2 = vmu.load(0, max(n1, n2))
    assert c2 >= c1


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 1000))
def test_replica_never_costs_more_than_full_load(vl):
    vmu = make_vmu()
    _, full = vmu.load(0, vl)
    vmu2 = make_vmu()
    _, replica = vmu2.load_replica(0, 1, vl)
    assert replica <= full + 1


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(0, 2**31), min_size=1, max_size=100))
def test_bytes_accounting_consistent(values):
    vmu = make_vmu()
    arr = np.array(values, dtype=np.int64)
    vmu.store(0, arr)
    vmu.load(0, len(arr))
    assert vmu.stats.bytes_stored == 4 * len(arr)
    assert vmu.stats.bytes_loaded == 4 * len(arr)
