"""Control processor: vector-shadow issue accounting."""

import numpy as np
import pytest

from repro.baseline.trace import TraceBlock
from repro.engine.cp import ControlProcessor


def test_vector_instructions_serialise():
    cp = ControlProcessor()
    added = cp.vector_issue(100) + cp.vector_issue(200)
    assert added == 300
    assert cp.stats.vector_cycles == 300


def test_scalar_work_hides_in_vector_shadow():
    """Section III: scalar instructions issue and execute in the shadow
    of an outstanding vector instruction."""
    cp = ControlProcessor()
    cp.vector_issue(10_000)
    exposed = cp.scalar_block(TraceBlock("s", int_ops=100))
    assert exposed == 0.0
    assert cp.stats.hidden_scalar_cycles > 0


def test_scalar_overflow_beyond_shadow_is_exposed():
    cp = ControlProcessor()
    cp.vector_issue(10)
    exposed = cp.scalar_block(TraceBlock("s", int_ops=10_000))
    assert exposed > 0
    assert exposed == pytest.approx(cp.stats.scalar_cycles - 10)


def test_shadow_budget_consumed_once():
    cp = ControlProcessor()
    cp.vector_issue(100)
    cp.scalar_block(TraceBlock("a", int_ops=150))  # eats ~75 cycles of shadow
    first_hidden = cp.stats.hidden_scalar_cycles
    cp.scalar_block(TraceBlock("b", int_ops=400))
    assert cp.stats.hidden_scalar_cycles - first_hidden <= 100 - first_hidden + 1e-9


def test_scalar_ops_convenience():
    cp = ControlProcessor()
    exposed = cp.scalar_ops(int_ops=20, branches=2)
    assert exposed > 0


def test_negative_vector_cycles_rejected():
    cp = ControlProcessor()
    with pytest.raises(Exception):
        cp.vector_issue(-1)
