"""VMU: sub-requests, interleaving constraints, replica loads."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.engine.vmu import VMU, VMUConfig
from repro.memory.hbm import HBM
from repro.memory.mainmem import WordMemory


def make_vmu(num_chains=1024, **kwargs):
    return VMU(num_chains, HBM(), WordMemory(1 << 22), VMUConfig(**kwargs))


def test_load_round_trips_values(rng):
    vmu = make_vmu()
    values = rng.integers(0, 2**31, size=1000)
    vmu.memory.write_words(0x1000, values)
    out, cycles = vmu.load(0x1000, 1000)
    assert out.tolist() == values.tolist()
    assert cycles > 0


def test_store_then_load(rng):
    vmu = make_vmu()
    values = rng.integers(0, 2**31, size=256)
    vmu.store(0x2000, values)
    out, _ = vmu.load(0x2000, 256)
    assert out.tolist() == values.tolist()


def test_sub_request_must_fit_in_chains():
    """Section V-E: sub-requests never exceed the chain count, so the
    VMU needs no buffering."""
    with pytest.raises(ConfigError):
        VMU(64, HBM(), WordMemory(1 << 20), VMUConfig(sub_request_bytes=512))
    VMU(128, HBM(), WordMemory(1 << 20), VMUConfig(sub_request_bytes=512))


def test_sub_request_count_accounted():
    vmu = make_vmu()
    vmu.load(0, 1024)  # 4 KiB = 8 sub-requests of 512 B
    assert vmu.stats.sub_requests == 8


def test_large_transfers_are_bandwidth_bound():
    vmu = make_vmu()
    _, small = vmu.load(0, 128)
    _, big = vmu.load(0, 128 * 1024)
    assert big > small * 10


def test_strided_load_gathers_correctly(rng):
    vmu = make_vmu()
    values = rng.integers(0, 2**31, size=512)
    vmu.memory.write_words(0, values)
    out, cycles = vmu.load_strided(0, 64, stride_bytes=32)
    assert out.tolist() == values[::8][:64].tolist()


def test_strided_load_costs_more_than_unit_stride():
    vmu = make_vmu()
    _, unit = vmu.load(0, 4096)
    _, strided = vmu.load_strided(0, 4096 // 8, stride_bytes=32)
    # 512 elements via strided packets vs 4096 contiguous: strided pays
    # a packet per element.
    assert strided > unit / 8


def test_replica_load_replicates_chunk(rng):
    vmu = make_vmu()
    chunk = rng.integers(0, 1000, size=16)
    vmu.memory.write_words(0x3000, chunk)
    out, _ = vmu.load_replica(0x3000, 16, vl=100)
    assert out.tolist() == np.tile(chunk, 7)[:100].tolist()


def test_replica_load_cheaper_than_full_load(rng):
    """Section V-G: vlrw pays memory traffic for one copy only."""
    vmu = make_vmu()
    vl = 32768
    _, full = vmu.load(0, vl)
    _, replica = vmu.load_replica(0, 64, vl)
    assert replica < full / 4
    assert vmu.stats.replica_loads == 1


def test_replica_rejects_bad_chunk():
    vmu = make_vmu()
    with pytest.raises(ConfigError):
        vmu.load_replica(0, 0, vl=10)


def test_bytes_accounting(rng):
    vmu = make_vmu()
    vmu.load(0, 100)
    vmu.store(0, np.zeros(50))
    assert vmu.stats.bytes_loaded == 400
    assert vmu.stats.bytes_stored == 200
