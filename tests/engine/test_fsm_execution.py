"""FSM-driven truth-table execution vs the reference microcode.

The chain controller's sequencer + TTM + decoder must be able to realise
the associative algorithms on their own: walking the stored truth table
produces the same architectural result (and, for the fully-TTM-expressible
instructions, the same microoperation mix) as the executable microcode in
``repro.assoc.algorithms``.
"""

import numpy as np
import pytest

from repro.assoc import algorithms as alg
from repro.csb.chain import Chain, MetaRow
from repro.engine.vcu import TRUTH_TABLES, TTDecoder, execute_table

VD, VS1, VS2 = 3, 1, 2
CARRY = int(MetaRow.CARRY)


def fresh_chain(rng, width=8, cols=16):
    chain = Chain(num_subarrays=width, num_cols=cols)
    a = rng.integers(0, 1 << width, size=cols)
    b = rng.integers(0, 1 << width, size=cols)
    chain.poke_register(VS1, a)
    chain.poke_register(VS2, b)
    return chain, a, b


def test_fsm_executes_vadd_table(rng):
    chain, a, b = fresh_chain(rng)
    execute_table(
        chain,
        TRUTH_TABLES["vadd.vv"],
        TTDecoder(vd=VD, vs1=VS1, vs2=VS2),
        width=8,
        preamble=((VD, 0), (CARRY, 0)),
    )
    assert chain.peek_register(VD).tolist() == ((a + b) % 256).tolist()


def test_fsm_vadd_matches_microcode_cycle_count(rng):
    chain, a, b = fresh_chain(rng)
    before = chain.stats.total_microops
    execute_table(
        chain,
        TRUTH_TABLES["vadd.vv"],
        TTDecoder(vd=VD, vs1=VS1, vs2=VS2),
        width=8,
        preamble=((VD, 0), (CARRY, 0)),
    )
    fsm_ops = chain.stats.total_microops - before
    assert fsm_ops == 8 * 8 + 2  # Table I: 8n + 2


@pytest.mark.parametrize(
    "name,preamble,golden",
    [
        ("vand.vv", ((3, 0),), lambda a, b: a & b),
        ("vor.vv", ((3, 1),), lambda a, b: a | b),
        ("vxor.vv", ((3, 0),), lambda a, b: a ^ b),
    ],
)
def test_fsm_executes_logic_tables(rng, name, preamble, golden):
    chain, a, b = fresh_chain(rng)
    # Logic tables are bit-parallel in the microcode; the FSM realises
    # them bit-serially (one subarray per step) with the same result.
    execute_table(
        chain,
        TRUTH_TABLES[name],
        TTDecoder(vd=VD, vs1=VS1, vs2=VS2),
        width=8,
        preamble=preamble,
    )
    assert chain.peek_register(VD).tolist() == golden(a, b).tolist()


def test_fsm_executes_borrow_chain_for_vmslt(rng):
    chain, a, b = fresh_chain(rng)
    execute_table(
        chain,
        TRUTH_TABLES["vmslt.vv"],
        TTDecoder(vd=VD, vs1=VS1, vs2=VS2),
        width=8,
        preamble=((CARRY, 0),),
    )
    # After the borrow walk, the final borrow (unsigned a < b) sits in
    # the carry row of subarray 0 (the wrap-around landing slot).
    borrow = chain.peek_row(0, CARRY)
    assert borrow.tolist() == (a < b).astype(int).tolist()


def test_fsm_redsum_reduces_through_tags(rng):
    chain, a, _ = fresh_chain(rng)
    total = execute_table(
        chain,
        TRUTH_TABLES["vredsum.vs"],
        TTDecoder(vd=VD, vs1=VS1, vs2=VS2),
        width=8,
        msb_first=True,
    )
    assert total == int(a.sum())


def test_fsm_result_equals_microcode_result(rng):
    """Same operands through both execution routes."""
    chain_fsm, a, b = fresh_chain(rng)
    execute_table(
        chain_fsm,
        TRUTH_TABLES["vadd.vv"],
        TTDecoder(vd=VD, vs1=VS1, vs2=VS2),
        width=8,
        preamble=((VD, 0), (CARRY, 0)),
    )
    chain_alg = Chain(num_subarrays=8, num_cols=16)
    chain_alg.poke_register(VS1, a)
    chain_alg.poke_register(VS2, b)
    alg.vadd_vv(chain_alg, VD, VS1, VS2, width=8)
    assert (
        chain_fsm.peek_register(VD).tolist()
        == chain_alg.peek_register(VD).tolist()
    )
