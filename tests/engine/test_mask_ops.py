"""Mask-register operations: popcount and find-first."""

import numpy as np
import pytest

from repro.engine.system import CAPEConfig, CAPESystem


def test_vfirst_finds_lowest_set_bit(tiny_cape):
    tiny_cape.vsetvl(16)
    tiny_cape.vregs[1, :16] = 0
    tiny_cape.vregs[1, 5] = 1
    tiny_cape.vregs[1, 9] = 1
    assert tiny_cape.vfirst(1) == 5


def test_vfirst_empty_mask_returns_minus_one(tiny_cape):
    tiny_cape.vsetvl(16)
    tiny_cape.vregs[1, :16] = 0
    assert tiny_cape.vfirst(1) == -1


def test_vfirst_respects_vstart(tiny_cape):
    tiny_cape.vsetvl(16)
    tiny_cape.vregs[1, :16] = 0
    tiny_cape.vregs[1, 2] = 1
    tiny_cape.vregs[1, 10] = 1
    tiny_cape.set_vstart(4)
    assert tiny_cape.vfirst(1) == 10
    tiny_cape.set_vstart(0)


def test_vfirst_cost_is_logarithmic(tiny_cape):
    tiny_cape.vsetvl(tiny_cape.config.max_vl)
    before = tiny_cape.stats.cycles
    tiny_cape.vfirst(1)
    log_cost = tiny_cape.stats.cycles - before
    before = tiny_cape.stats.cycles
    tiny_cape.vadd(2, 1, 1)
    add_cost = tiny_cape.stats.cycles - before
    assert log_cost < add_cost  # log2(vl) popcounts beat a full vadd


def test_popcount_and_vfirst_agree_on_hot_mask(tiny_cape, rng):
    tiny_cape.vsetvl(64)
    mask = rng.integers(0, 2, size=64)
    tiny_cape.vregs[1, :64] = mask
    assert tiny_cape.vmask_popcount(1) == int(mask.sum())
    expected_first = int(np.flatnonzero(mask)[0]) if mask.any() else -1
    assert tiny_cape.vfirst(1) == expected_first
