"""Strided stores (vsse32.v): functional scatter and timing."""

import numpy as np
import pytest

from repro.engine.system import CAPEConfig, CAPESystem
from repro.engine.vmu import VMU, VMUConfig
from repro.memory.hbm import HBM
from repro.memory.mainmem import WordMemory


def test_store_strided_scatters():
    vmu = VMU(1024, HBM(), WordMemory(1 << 20), VMUConfig())
    values = np.arange(10, dtype=np.int64) + 100
    vmu.store_strided(0x1000, values, stride_bytes=32)
    for i in range(10):
        assert vmu.memory.read_word(0x1000 + 32 * i) == 100 + i


def test_strided_store_costs_more_than_unit_stride():
    vmu = VMU(1024, HBM(), WordMemory(1 << 22), VMUConfig())
    values = np.zeros(512, dtype=np.int64)
    unit = vmu.store(0, values)
    strided = vmu.store_strided(0, values, stride_bytes=64)
    assert strided > unit


def test_vsse_intrinsic(tiny_cape, rng):
    n = 64
    values = rng.integers(0, 1000, size=n)
    tiny_cape.vsetvl(n)
    tiny_cape.vregs[1, :n] = values
    tiny_cape.vsse(1, 0x2000, 16)
    for i in range(n):
        assert tiny_cape.memory.read_word(0x2000 + 16 * i) == values[i]


def test_vsse_in_assembly(rng):
    from repro.isa.interpreter import Machine

    cape = CAPESystem(CAPEConfig(name="t", num_chains=64))
    values = rng.integers(0, 1000, size=16)
    cape.memory.write_words(0x1000, values)
    machine = Machine(
        """
            li a0, 16
            li a1, 0x1000
            li a2, 0x8000
            li a3, 8          # stride in bytes
            vsetvli t0, a0, e32
            vle32.v v1, (a1)
            vsse32.v v1, (a2), a3
            ecall
        """,
        cape,
    )
    machine.run()
    for i in range(16):
        assert cape.memory.read_word(0x8000 + 8 * i) == values[i]


def test_vsse_vlse_round_trip(tiny_cape, rng):
    n = 32
    values = rng.integers(0, 1000, size=n)
    tiny_cape.vsetvl(n)
    tiny_cape.vregs[1, :n] = values
    tiny_cape.vsse(1, 0x4000, 12)
    tiny_cape.vlse(2, 0x4000, 12)
    assert tiny_cape.read_vreg(2).tolist() == values.tolist()