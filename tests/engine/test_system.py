"""CAPE system: functional intrinsics semantics and timing accounting."""

import numpy as np
import pytest

from repro.common.errors import CapacityError, ConfigError
from repro.engine.system import CAPE131K, CAPE32K, CAPEConfig, CAPESystem


def test_presets_match_paper_capacities():
    assert CAPE32K.max_vl == 32_768
    assert CAPE131K.max_vl == 131_072
    assert CAPE32K.num_chains == 1024
    assert CAPE131K.num_chains == 4096


def test_preset_areas_are_area_equivalent():
    assert CAPE32K.area_mm2() == pytest.approx(8.87, rel=0.15)
    assert CAPE131K.area_mm2() == pytest.approx(2 * 8.87, rel=0.25)


def test_vsetvl_grants_min_of_request_and_max(tiny_cape):
    assert tiny_cape.vsetvl(100) == 100
    assert tiny_cape.vsetvl(10**9) == tiny_cape.config.max_vl


def test_vle_vse_round_trip(tiny_cape, rng):
    values = rng.integers(0, 2**31, size=500)
    tiny_cape.memory.write_words(0x1000, values)
    tiny_cape.vsetvl(500)
    tiny_cape.vle(1, 0x1000)
    tiny_cape.vse(1, 0x9000)
    assert tiny_cape.memory.read_words(0x9000, 500).tolist() == values.tolist()


@pytest.mark.parametrize(
    "method,op",
    [
        ("vadd", lambda a, b: (a + b) & 0xFFFFFFFF),
        ("vsub", lambda a, b: (a - b) & 0xFFFFFFFF),
        ("vmul", lambda a, b: (a * b) & 0xFFFFFFFF),
        ("vand", lambda a, b: a & b),
        ("vor", lambda a, b: a | b),
        ("vxor", lambda a, b: a ^ b),
    ],
)
def test_binary_intrinsics_functional(tiny_cape, rng, method, op):
    n = 256
    a = rng.integers(0, 2**31, size=n)
    b = rng.integers(0, 2**31, size=n)
    tiny_cape.vsetvl(n)
    tiny_cape.vregs[1, :n] = a
    tiny_cape.vregs[2, :n] = b
    getattr(tiny_cape, method)(3, 1, 2)
    assert tiny_cape.read_vreg(3).tolist() == op(a, b).tolist()


def test_masked_add_preserves_inactive(tiny_cape, rng):
    n = 64
    tiny_cape.vsetvl(n)
    a = rng.integers(0, 100, n); b = rng.integers(0, 100, n)
    m = rng.integers(0, 2, n)
    tiny_cape.vregs[1, :n] = a
    tiny_cape.vregs[2, :n] = b
    tiny_cape.vregs[7, :n] = 99
    tiny_cape.vregs[0, :n] = m
    tiny_cape.vadd(7, 1, 2, mask=0)
    expected = np.where(m == 1, a + b, 99)
    assert tiny_cape.read_vreg(7).tolist() == expected.tolist()


def test_compare_intrinsics(tiny_cape):
    tiny_cape.vsetvl(4)
    tiny_cape.vregs[1, :4] = [5, 10, 5, 0]
    tiny_cape.vregs[2, :4] = [5, 5, 10, 0]
    tiny_cape.vmseq(3, 1, 2)
    assert tiny_cape.read_vreg(3).tolist() == [1, 0, 0, 1]
    tiny_cape.vmseq_vx(3, 1, 5)
    assert tiny_cape.read_vreg(3).tolist() == [1, 0, 1, 0]
    tiny_cape.vmsltu(3, 1, 2)
    assert tiny_cape.read_vreg(3).tolist() == [0, 0, 1, 0]


def test_vmslt_is_signed(tiny_cape):
    tiny_cape.vsetvl(2)
    tiny_cape.vregs[1, :2] = [0xFFFFFFFF, 1]  # -1, 1
    tiny_cape.vregs[2, :2] = [0, 0]
    tiny_cape.vmslt(3, 1, 2)
    assert tiny_cape.read_vreg(3).tolist() == [1, 0]


def test_vmerge_selects(tiny_cape):
    tiny_cape.vsetvl(4)
    tiny_cape.vregs[1, :4] = [1, 2, 3, 4]
    tiny_cape.vregs[2, :4] = [10, 20, 30, 40]
    tiny_cape.vregs[0, :4] = [1, 0, 0, 1]
    tiny_cape.vmerge(3, 1, 2, vm=0)
    assert tiny_cape.read_vreg(3).tolist() == [1, 20, 30, 4]


def test_vredsum_signed(tiny_cape):
    tiny_cape.vsetvl(3)
    tiny_cape.vregs[1, :3] = [0xFFFFFFFF, 5, 2]  # -1 + 5 + 2
    assert tiny_cape.vredsum(1) == 6
    assert tiny_cape.vredsum(1, signed=False) == 0xFFFFFFFF + 7


def test_vmask_popcount(tiny_cape):
    tiny_cape.vsetvl(8)
    tiny_cape.vregs[1, :8] = [1, 0, 1, 1, 0, 0, 1, 0]
    assert tiny_cape.vmask_popcount(1) == 4


def test_vstart_limits_active_window(tiny_cape):
    tiny_cape.vsetvl(8)
    tiny_cape.vregs[1, :8] = 7
    tiny_cape.set_vstart(4)
    tiny_cape.vmv_vx(1, 9)
    tiny_cape.set_vstart(0)
    assert tiny_cape.read_vreg(1).tolist() == [7] * 4 + [9] * 4


def test_replica_load_intrinsic(tiny_cape, rng):
    chunk = rng.integers(0, 100, size=8)
    tiny_cape.memory.write_words(0x2000, chunk)
    tiny_cape.vsetvl(30)
    tiny_cape.vlrw(1, 0x2000, 8)
    assert tiny_cape.read_vreg(1).tolist() == np.tile(chunk, 4)[:30].tolist()


def test_cycles_accumulate_by_category(tiny_cape):
    tiny_cape.vsetvl(100)
    tiny_cape.vle(1, 0)
    c_after_mem = tiny_cape.stats.memory_cycles
    tiny_cape.vadd(2, 1, 1)
    assert tiny_cape.stats.memory_cycles == c_after_mem
    assert tiny_cape.stats.compute_cycles > 0
    assert tiny_cape.stats.cycles >= tiny_cape.stats.compute_cycles


def test_energy_accumulates(tiny_cape):
    tiny_cape.vsetvl(1000)
    tiny_cape.vle(1, 0)
    tiny_cape.vmul(2, 1, 1)
    assert tiny_cape.stats.energy_j > 0


def test_mul_costs_more_than_add(tiny_cape):
    tiny_cape.vsetvl(100)
    tiny_cape.vregs[1, :100] = 3
    before = tiny_cape.stats.cycles
    tiny_cape.vadd(2, 1, 1)
    add_cost = tiny_cape.stats.cycles - before
    before = tiny_cape.stats.cycles
    tiny_cape.vmul(3, 1, 1)
    mul_cost = tiny_cape.stats.cycles - before
    assert mul_cost > 10 * add_cost


def test_redsum_about_8x_faster_than_add(tiny_cape):
    """Section V-G: a vector redsum is ~8x faster than an element-wise
    vector addition."""
    tiny_cape.vsetvl(tiny_cape.config.max_vl)
    before = tiny_cape.stats.cycles
    tiny_cape.vadd(2, 1, 1)
    add_cost = tiny_cape.stats.cycles - before
    before = tiny_cape.stats.cycles
    tiny_cape.vredsum(1)
    red_cost = tiny_cape.stats.cycles - before
    assert add_cost / red_cost == pytest.approx(8, rel=0.4)


def test_invalid_vl_rejected(tiny_cape):
    with pytest.raises(CapacityError):
        tiny_cape.vsetvl(-1)
    with pytest.raises(ConfigError):
        tiny_cape.set_vstart(10**9)
