"""Tiled-chip integration: modes, pairing, and co-scheduling."""

import numpy as np
import pytest

from repro.baseline.trace import Trace, TraceBlock
from repro.common.errors import ConfigError
from repro.engine.system import CAPEConfig
from repro.engine.tile import (
    CAPETile,
    CoreTile,
    TiledChip,
    TileMode,
    cape_job,
    core_job,
)
from repro.memmode import KeyValueStore, Scratchpad, VictimCache
from repro.workloads.micro import VVAdd

TINY = CAPEConfig(name="tiny", num_chains=64)


def test_cape_tile_defaults_to_compute():
    tile = CAPETile("cape0", TINY)
    system = tile.require_compute()
    system.vsetvl(100)
    system.vadd(1, 2, 3)
    assert system.stats.cycles > 0


@pytest.mark.parametrize(
    "mode,storage_type",
    [
        (TileMode.SCRATCHPAD, Scratchpad),
        (TileMode.KEY_VALUE, KeyValueStore),
        (TileMode.VICTIM_CACHE, VictimCache),
    ],
)
def test_mode_switching_builds_storage(mode, storage_type):
    tile = CAPETile("cape0", TINY)
    tile.set_mode(mode)
    assert isinstance(tile.storage, storage_type)
    with pytest.raises(ConfigError):
        tile.require_compute()
    tile.set_mode(TileMode.COMPUTE)
    assert tile.require_compute() is not None


def test_chip_lookup_by_name():
    chip = TiledChip(cape_tiles=2, core_tiles=1, cape_config=TINY)
    assert isinstance(chip.tile("cape1"), CAPETile)
    assert isinstance(chip.tile("core0"), CoreTile)
    with pytest.raises(ConfigError):
        chip.tile("gpu0")


def test_victim_cache_pairing_serves_core_tile():
    chip = TiledChip(cape_tiles=1, core_tiles=1, cape_config=TINY)
    vc = chip.attach_victim_cache("cape0", "core0")
    core = chip.tile("core0")
    assert core.hierarchy.victim_cache is vc
    # Drive the core tile past its L2 so victims land in the CAPE tile.
    lines = (core.hierarchy.config.l2_size // 64) + 2048
    loads = 64 * np.arange(lines, dtype=np.int64)
    core.run(Trace("thrash", [TraceBlock("w", loads=np.tile(loads, 2))]))
    assert vc.stats.insertions > 0


def test_co_schedule_overlaps_compute_and_shares_memory():
    chip = TiledChip(cape_tiles=1, core_tiles=1, cape_config=TINY)
    result = chip.co_schedule(
        {
            "cape0": cape_job(lambda: VVAdd(n=4096)),
            "core0": core_job(lambda: VVAdd(n=4096).scalar_trace()),
        }
    )
    assert set(result.per_tile_seconds) == {"cape0", "core0"}
    assert result.chip_seconds == max(result.per_tile_seconds.values())
    # Contention: the co-scheduled CAPE time exceeds a solo run.
    solo_chip = TiledChip(cape_tiles=1, core_tiles=0, cape_config=TINY)
    solo = solo_chip.co_schedule({"cape0": cape_job(lambda: VVAdd(n=4096))})
    assert result.per_tile_seconds["cape0"] >= solo.per_tile_seconds["cape0"]


def test_empty_chip_rejected():
    with pytest.raises(ConfigError):
        TiledChip(cape_tiles=0, core_tiles=0)


def test_two_cape_tiles_split_a_workload():
    """Data-parallel work split across two CAPE tiles finishes sooner
    than on one (compute overlaps; the shared HBM stretches memory)."""
    chip2 = TiledChip(cape_tiles=2, core_tiles=0, cape_config=TINY)
    halves = chip2.co_schedule(
        {
            "cape0": cape_job(lambda: VVAdd(n=8192, seed=1)),
            "cape1": cape_job(lambda: VVAdd(n=8192, seed=2)),
        }
    )
    chip1 = TiledChip(cape_tiles=1, core_tiles=0, cape_config=TINY)
    whole = chip1.co_schedule(
        {"cape0": cape_job(lambda: VVAdd(n=16384, seed=1))}
    )
    assert halves.chip_seconds < whole.chip_seconds
