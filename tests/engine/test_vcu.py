"""VCU: sequencer FSM, truth-table decoder, command distribution."""

import pytest

from repro.assoc.instruction_model import InstructionModel
from repro.assoc.truthtable import TTEntry, UpdateOp
from repro.common.errors import ConfigError
from repro.csb.chain import MetaRow
from repro.engine.vcu import (
    COMMAND_BUS_BITS,
    ChainControllerFSM,
    SequencerState,
    TRUTH_TABLES,
    TTDecoder,
    VCU,
)


@pytest.fixture(scope="module")
def model():
    return InstructionModel(width=32)


def test_decoder_binds_roles_to_rows():
    decoder = TTDecoder(vd=3, vs1=1, vs2=2)
    assert decoder.row_of("vd") == 3
    assert decoder.row_of("vs1") == 1
    assert decoder.row_of("carry") == int(MetaRow.CARRY)
    with pytest.raises(ConfigError):
        decoder.row_of("nope")


def test_decoder_shifts_bits_into_command_word():
    decoder = TTDecoder(vd=3, vs1=1, vs2=2)
    entry = TTEntry(
        search=(("vs1", 1), ("vs2", 0), ("carry", 1)),
        updates=(UpdateOp("vd", 1), UpdateOp("carry", 1, next_subarray=True)),
    )
    word = decoder.decode(entry, subarray=5)
    assert word.search_mask == (1 << 1) | (1 << 2) | (1 << int(MetaRow.CARRY))
    assert word.search_data == (1 << 1) | (1 << int(MetaRow.CARRY))
    assert word.update_mask == 1 << 3
    assert word.update_data == 1 << 3
    assert word.update_next_mask == 1 << int(MetaRow.CARRY)
    assert word.subarray_select == 5


def test_fsm_walks_entries_per_bit():
    decoder = TTDecoder(vd=3, vs1=1, vs2=2)
    fsm = ChainControllerFSM(TRUTH_TABLES["vxor.vv"], decoder, width=4)
    states = [s for s, _ in fsm.run()]
    # Per bit: (READ_TTM, SEARCH) + (READ_TTM, SEARCH, UPDATE); 4 bits,
    # then a final IDLE.
    per_bit = [
        SequencerState.READ_TTM, SequencerState.GEN_SEARCH,
        SequencerState.READ_TTM, SequencerState.GEN_SEARCH,
        SequencerState.GEN_UPDATE,
    ]
    assert states == per_bit * 4 + [SequencerState.IDLE]


def test_fsm_msb_first_order():
    decoder = TTDecoder(vd=3, vs1=1, vs2=2)
    fsm = ChainControllerFSM(
        TRUTH_TABLES["vredsum.vs"], decoder, width=4, msb_first=True
    )
    selects = [
        w.subarray_select
        for s, w in fsm.run()
        if s is SequencerState.GEN_SEARCH
    ]
    assert selects == [3, 2, 1, 0]


def test_fsm_reduce_state_engaged_for_redsum():
    decoder = TTDecoder(vd=3, vs1=1, vs2=2)
    fsm = ChainControllerFSM(TRUTH_TABLES["vredsum.vs"], decoder, width=2, msb_first=True)
    states = [s for s, _ in fsm.run()]
    assert SequencerState.REDUCE in states


def test_reference_truth_tables_respect_circuit_limits():
    for table in TRUTH_TABLES.values():
        assert table.max_search_rows <= 4
        assert table.max_update_rows <= 2


def test_vadd_table_has_paper_entry_structure():
    table = TRUTH_TABLES["vadd.vv"]
    # 4 sum entries + 3 carry (majority) entries, one committing update
    # to two subarrays.
    assert len(table) == 7
    assert table.max_update_rows == 2


def test_command_bus_width_documented():
    assert COMMAND_BUS_BITS == 143


def test_distribution_cycles_grow_with_chains(model):
    small = VCU(64, model)
    big = VCU(4096, model)
    assert big.distribution_cycles > small.distribution_cycles


def test_dispatch_charges_distribution_plus_instruction(model):
    vcu = VCU(1024, model)
    total = vcu.dispatch("vadd.vv", vl=1000)
    assert total == vcu.distribution_cycles + model.cycles("vadd.vv")


def test_dispatch_reduction_adds_tree_stages(model):
    vcu = VCU(1024, model)
    plain = vcu.dispatch("vredsum.vs", vl=10, reduction=False)
    with_tree = vcu.dispatch("vredsum.vs", vl=10, reduction=True)
    assert with_tree == plain + vcu.reduction_tree.num_stages


def test_dispatch_accumulates_energy(model):
    vcu = VCU(1024, model)
    vcu.dispatch("vadd.vv", vl=32768)
    expected = model.energy_per_lane_j("vadd.vv") * 32768
    assert vcu.stats.energy_j == pytest.approx(expected)


def test_dispatch_raw_charges_explicit_cycles(model):
    vcu = VCU(1024, model)
    total = vcu.dispatch_raw(7, vl=100)
    assert total == vcu.distribution_cycles + 7
