"""SEW reconfiguration (narrow elements) and memory fences."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.engine.system import CAPEConfig, CAPESystem


def test_set_sew_changes_wraparound(tiny_cape):
    tiny_cape.vsetvl(4, sew=8)
    tiny_cape.vregs[1, :4] = [250, 10, 255, 0]
    tiny_cape.vadd_vx(2, 1, 10)
    assert tiny_cape.read_vreg(2).tolist() == [4, 20, 9, 10]  # mod 256


def test_narrow_sew_speeds_up_bit_serial_arithmetic(tiny_cape):
    tiny_cape.vsetvl(tiny_cape.config.max_vl, sew=32)
    before = tiny_cape.stats.cycles
    tiny_cape.vadd(2, 1, 1)
    cost32 = tiny_cape.stats.cycles - before

    tiny_cape.vsetvl(tiny_cape.config.max_vl, sew=8)
    before = tiny_cape.stats.cycles
    tiny_cape.vadd(2, 1, 1)
    cost8 = tiny_cape.stats.cycles - before
    # 8n+2: 258 -> 66 cycles (plus identical dispatch overhead).
    assert cost8 < cost32 / 3


def test_narrow_sew_reduces_memory_traffic(tiny_cape):
    tiny_cape.vsetvl(1024, sew=32)
    tiny_cape.vle(1, 0)
    at32 = tiny_cape.vmu.stats.bytes_loaded
    tiny_cape.vsetvl(1024, sew=8)
    tiny_cape.vle(1, 0)
    at8 = tiny_cape.vmu.stats.bytes_loaded - at32
    assert at32 == 4096
    assert at8 == 1024


def test_logic_ops_unaffected_by_sew(tiny_cape):
    """Bit-parallel instructions cost the same at any width."""
    tiny_cape.vsetvl(100, sew=32)
    before = tiny_cape.stats.cycles
    tiny_cape.vand(3, 1, 2)
    cost32 = tiny_cape.stats.cycles - before
    tiny_cape.vsetvl(100, sew=8)
    before = tiny_cape.stats.cycles
    tiny_cape.vand(3, 1, 2)
    cost8 = tiny_cape.stats.cycles - before
    assert cost8 == cost32


def test_unsupported_sew_rejected(tiny_cape):
    with pytest.raises(ConfigError):
        tiny_cape.set_sew(12)
    with pytest.raises(ConfigError):
        tiny_cape.set_sew(64)


def test_sew_via_assembly():
    from repro.isa.interpreter import Machine

    cape = CAPESystem(CAPEConfig(name="t", num_chains=64))
    cape.memory.write_words(0x1000, np.array([250, 10, 255, 0]))
    machine = Machine(
        """
            li a0, 4
            li a1, 0x1000
            vsetvli t0, a0, e8
            vle32.v v1, (a1)
            vadd.vx v2, v1, a0
            ecall
        """,
        cape,
    )
    machine.run()
    assert cape.sew == 8
    assert cape.read_vreg(2).tolist() == [(250 + 4) % 256, 14, 3, 4]


def test_fence_drains_vector_shadow(tiny_cape):
    tiny_cape.vsetvl(tiny_cape.config.max_vl)
    tiny_cape.vmul(2, 1, 1)  # long-running vector op -> big shadow
    before = tiny_cape.stats.cycles
    tiny_cape.fence()
    assert tiny_cape.stats.cycles > before  # the drain is visible time
    # After the fence, scalar work no longer hides.
    exposed_before = tiny_cape.stats.scalar_exposed_cycles
    tiny_cape.scalar_ops(int_ops=1000)
    assert tiny_cape.stats.scalar_exposed_cycles > exposed_before


def test_fence_in_assembly():
    from repro.isa.interpreter import Machine

    machine = Machine(
        """
            li a0, 8
            vsetvli t0, a0, e32
            vmul.vv v3, v1, v2
            fence
            ecall
        """
    )
    result = machine.run()
    assert result.halted == "ecall"
