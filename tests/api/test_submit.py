"""The unified submission API and its deprecated predecessors.

``api.submit(specs, pool=...)`` must return the same answers on every
execution surface — a fresh device, an existing pool, a gateway — and
the old per-surface entry points (``run`` / ``run_pool`` / ``serve``)
must keep working while warning.
"""

import warnings

import numpy as np
import pytest

from repro import api
from repro.api import (
    CAPE32K,
    ConfigError,
    Device,
    DevicePool,
    ExecConfig,
    Job,
    JobResult,
    JobSpec,
    ServeConfig,
    submit,
)
from repro.engine.system import CAPEConfig
from repro.runtime.execconfig import resolve_exec
from repro.runtime.job import Footprint

TINY = CAPEConfig(name="tiny", num_chains=64)


def dot_spec(name, i=0):
    return JobSpec(
        name, "dot", {"x": np.arange(8) + i, "y": np.arange(8)}, lanes=8
    )


def dot_golden(i=0):
    return int(((np.arange(8) + i) * np.arange(8)).sum())


class TestSubmitSingleDevice:
    def test_single_spec_returns_a_single_result(self):
        result = submit(dot_spec("one", 3), config=TINY)
        assert isinstance(result, JobResult)
        assert result.output == dot_golden(3)
        assert result.error is None

    def test_spec_list_returns_results_in_order(self):
        results = submit([dot_spec(f"s{i}", i) for i in range(4)], config=TINY)
        assert [r.output for r in results] == [dot_golden(i) for i in range(4)]

    def test_bitplane_backend_rides_along(self):
        result = submit(dot_spec("b", 1), config=TINY, backend="bitplane")
        assert result.output == dot_golden(1)

    def test_non_spec_input_is_rejected_with_the_bridge_hint(self):
        job = Job("j", lambda system: 1, Footprint(lanes=8))
        with pytest.raises(ConfigError, match="JobSpec.from_job"):
            submit([job])

    def test_exec_config_plan_cache_knob_applies(self):
        from repro.plan import PlanCache

        cache = PlanCache()
        result = submit(
            dot_spec("c", 2), config=TINY, backend="bitplane",
            exec=ExecConfig(plan_cache=cache),
        )
        assert result.output == dot_golden(2)
        assert cache.stats()["misses"] > 0


class TestSubmitPool:
    def test_pool_instance_runs_the_batch(self):
        pool = DevicePool((TINY, TINY))
        results = submit(
            [dot_spec(f"p{i}", i) for i in range(6)], pool=pool
        )
        assert [r.output for r in results] == [dot_golden(i) for i in range(6)]

    def test_gang_pool_matches_plain_pool(self):
        specs = [dot_spec(f"g{i}", i) for i in range(6)]
        plain = submit(specs, pool=DevicePool((TINY, TINY), backend="bitplane"))
        ganged = submit(
            specs,
            pool=DevicePool(
                (TINY, TINY), backend="bitplane", exec=ExecConfig(gang=True)
            ),
        )
        assert [
            (r.output, r.service_cycles, r.energy_j) for r in ganged
        ] == [(r.output, r.service_cycles, r.energy_j) for r in plain]

    def test_construction_knobs_alongside_a_pool_are_rejected(self):
        pool = DevicePool((TINY,))
        with pytest.raises(ConfigError, match="already"):
            submit([dot_spec("x")], pool=pool, exec=ExecConfig())
        with pytest.raises(ConfigError, match="already"):
            submit([dot_spec("x")], pool=pool, backend="bitplane")
        with pytest.raises(ConfigError, match="already"):
            submit([dot_spec("x")], pool=pool, config=TINY)

    def test_unknown_pool_type_is_rejected(self):
        with pytest.raises(ConfigError, match="pool="):
            submit([dot_spec("x")], pool=object())


class TestSubmitGateway:
    def test_serve_config_boots_a_gateway(self):
        results = submit(
            [dot_spec(f"r{i}", i) for i in range(5)],
            pool=ServeConfig(configs=(TINY, TINY), workers=2),
        )
        assert [r.output for r in results] == [dot_golden(i) for i in range(5)]
        assert all(isinstance(r, JobResult) for r in results)

    def test_exec_config_overrides_serve_workers_and_gang(self):
        results = submit(
            [dot_spec(f"w{i}", i) for i in range(4)],
            pool=ServeConfig(configs=(TINY, TINY), backend="bitplane"),
            exec=ExecConfig(workers=1, gang=True),
        )
        assert [r.output for r in results] == [dot_golden(i) for i in range(4)]


class TestExecConfigResolution:
    def test_legacy_values_win_when_no_exec_given(self):
        knobs = resolve_exec(None, parallelism=(3, 1), gang=(True, False))
        assert knobs == {"parallelism": 3, "gang": True}

    def test_exec_values_win_outright(self):
        knobs = resolve_exec(
            ExecConfig(parallelism=2), parallelism=(1, 1), gang=(False, False)
        )
        assert knobs == {"parallelism": 2, "gang": "auto"}

    def test_non_default_legacy_alongside_exec_is_an_error(self):
        with pytest.raises(ConfigError, match="inside ExecConfig"):
            resolve_exec(ExecConfig(), parallelism=(4, 1))


class TestBridges:
    def test_job_from_spec_round_trip(self):
        spec = dot_spec("rt", 5)
        job = Job.from_spec(spec)
        assert JobSpec.from_job(job) is spec
        device = Device(TINY)
        job.result = job.execute(device.system)
        assert job.result.output == dot_golden(5)

    def test_plain_job_becomes_a_body_spec(self):
        def body(system):
            system.vsetvl(4)
            system.vmv_vx(1, 7)
            return int(system.vredsum(1, signed=False))

        job = Job("plain", body, Footprint(lanes=4), golden=28)
        spec = JobSpec.from_job(job)
        assert spec.kernel == "__body__"
        assert spec.golden == 28
        result = submit(spec, config=TINY)
        assert result.output == 28 and result.validated

    def test_validate_callables_cannot_cross(self):
        job = Job(
            "v", lambda system: 1, Footprint(lanes=4),
            validate=lambda out: out == 1,
        )
        with pytest.raises(ConfigError, match="golden="):
            JobSpec.from_job(job)


class TestDeprecatedShims:
    PROGRAM = """
        li a0, 1
        ecall
    """

    def test_run_warns_and_works(self):
        with pytest.warns(DeprecationWarning, match="submit"):
            result = api.run(self.PROGRAM, config=TINY)
        assert result.halted

    def test_run_pool_warns_and_works(self):
        jobs = [dot_spec(f"rp{i}", i).to_job() for i in range(3)]
        with pytest.warns(DeprecationWarning, match="submit"):
            report = api.run_pool(jobs, configs=(TINY,))
        assert report.completed == 3
        assert [j.result.output for j in jobs] == [
            dot_golden(i) for i in range(3)
        ]

    def test_serve_warns_and_works(self):
        with pytest.warns(DeprecationWarning, match="submit"):
            results = api.serve(
                [dot_spec(f"sv{i}", i) for i in range(3)],
                configs=(TINY,), workers=1,
            )
        assert [r.output for r in results] == [dot_golden(i) for i in range(3)]

    def test_submit_itself_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = submit(dot_spec("quiet"), config=TINY)
        assert result.output == dot_golden(0)
