"""Microbenchmarks: functional verification and trace sanity."""

import numpy as np
import pytest

from repro.engine.system import CAPEConfig, CAPESystem
from repro.workloads.micro import (
    MICROBENCHMARKS,
    Dotprod,
    IdxSearch,
    MemcpyBench,
    Saxpy,
    VVAdd,
    VVMul,
)

SMALL = CAPEConfig(name="test", num_chains=128)  # 4,096 lanes


@pytest.mark.parametrize("cls", list(MICROBENCHMARKS.values()), ids=list(MICROBENCHMARKS))
def test_cape_run_verifies_against_golden(cls):
    wl = cls(n=4096)
    result = wl.run_cape(CAPESystem(SMALL))
    assert result.checked
    assert result.cycles > 0
    assert result.seconds > 0


@pytest.mark.parametrize("cls", list(MICROBENCHMARKS.values()), ids=list(MICROBENCHMARKS))
def test_scalar_trace_has_work(cls):
    trace = cls(n=2048).scalar_trace()
    assert trace.total_ops > 2048


@pytest.mark.parametrize("cls", list(MICROBENCHMARKS.values()), ids=list(MICROBENCHMARKS))
def test_simd_trace_compresses_ops(cls):
    wl = cls(n=4096)
    scalar_ops = wl.scalar_trace().total_ops
    simd_ops = cls(n=4096).simd_trace(16).total_ops
    assert simd_ops < scalar_ops


def test_strip_mining_covers_many_tiles():
    wl = VVAdd(n=4096)  # 4,096 elements on a 512-lane machine = 8 tiles
    cape = CAPESystem(CAPEConfig(name="t", num_chains=16))
    wl.run_cape(cape)
    assert cape.vmu.stats.loads >= 16  # two loads per tile


def test_vvmul_slower_than_vvadd_on_cape():
    add = VVAdd(n=4096).run_cape(CAPESystem(SMALL))
    mul = VVMul(n=4096).run_cape(CAPESystem(SMALL))
    assert mul.cycles > add.cycles


def test_dotprod_checks_full_sum():
    wl = Dotprod(n=2048)
    result = wl.run_cape(CAPESystem(SMALL))
    assert result.checked


def test_idxsrch_finds_planted_matches():
    wl = IdxSearch(n=4096, match_rate=0.01)
    assert len(wl.expected) >= 40
    result = wl.run_cape(CAPESystem(SMALL))
    assert result.checked


def test_idxsrch_is_variable_intensity():
    assert IdxSearch.intensity == "variable"
    assert VVAdd.intensity == "constant"


def test_deterministic_inputs():
    a1 = VVAdd(n=128, seed=3)
    a2 = VVAdd(n=128, seed=3)
    assert np.array_equal(a1.a, a2.a)
    a3 = VVAdd(n=128, seed=4)
    assert not np.array_equal(a1.a, a3.a)
