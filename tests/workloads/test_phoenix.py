"""Phoenix applications at test scale: every CAPE run checks its answer."""

import numpy as np
import pytest

from repro.engine.system import CAPEConfig, CAPESystem
from repro.workloads.phoenix import (
    PHOENIX_APPS,
    Histogram,
    KMeans,
    LinearRegression,
    MatMul,
    PCA,
    ReverseIndex,
    StringMatch,
    WordCount,
)

SMALL = CAPEConfig(name="test", num_chains=128)  # 4,096 lanes

#: Reduced-size constructor arguments for fast tests.
TEST_ARGS = {
    "matmul": dict(m=8, n=128, p=8),
    "pca": dict(rows=5, cols=256),
    "lreg": dict(n=4096),
    "hist": dict(n=4096),
    "kmeans": dict(points=2000, dims=3, k=3, iterations=2),
    "wrdcnt": dict(n=8192),
    "revidx": dict(n=8192),
    "strmatch": dict(n=8192),
}


@pytest.mark.parametrize("name", list(PHOENIX_APPS))
def test_cape_runs_verify_against_golden(name):
    wl = PHOENIX_APPS[name](**TEST_ARGS[name])
    result = wl.run_cape(CAPESystem(SMALL))
    assert result.checked
    assert result.cycles > 0


@pytest.mark.parametrize("name", list(PHOENIX_APPS))
def test_scalar_and_simd_traces_exist(name):
    wl = PHOENIX_APPS[name](**TEST_ARGS[name])
    scalar = wl.scalar_trace()
    simd = wl.simd_trace(16)
    assert scalar.total_ops > 0
    assert simd.total_ops > 0
    assert simd.total_ops < scalar.total_ops


def test_matmul_matches_numpy():
    wl = MatMul(m=4, n=64, p=4)
    cape = CAPESystem(SMALL)
    wl.run_cape(cape)  # internal check against A @ B


def test_matmul_uses_replica_loads():
    wl = MatMul(m=4, n=64, p=4)
    cape = CAPESystem(SMALL)
    wl.run_cape(cape)
    assert cape.vmu.stats.replica_loads == 4  # one vlrw per output column


def test_pca_covariance_is_symmetric_by_construction():
    wl = PCA(rows=4, cols=128)
    assert np.array_equal(wl.expected_cov, wl.expected_cov.T)
    wl.run_cape(CAPESystem(SMALL))


def test_lreg_sums_are_exact():
    wl = LinearRegression(n=2048)
    result = wl.run_cape(CAPESystem(SMALL))
    assert result.checked


def test_histogram_covers_all_pixels():
    wl = Histogram(n=4096)
    assert wl.expected.sum() == 4096
    wl.run_cape(CAPESystem(SMALL))


def test_kmeans_assignments_match_golden():
    wl = KMeans(points=1500, dims=3, k=3, iterations=2)
    wl.run_cape(CAPESystem(SMALL))  # verifies assignments internally


def test_kmeans_capacity_distinguishes_designs():
    """The default dataset fits CAPE131k (131,072 lanes) but not CAPE32k."""
    wl = KMeans()
    assert 32_768 < wl.points <= 131_072


def test_text_apps_plant_expected_matches():
    for cls in (WordCount, ReverseIndex, StringMatch):
        wl = cls(n=8192)
        assert wl.total_matches() > 0
        assert wl.intensity == "variable"


def test_text_app_counts_are_checked():
    wl = WordCount(n=8192)
    result = wl.run_cape(CAPESystem(SMALL))
    assert result.checked
