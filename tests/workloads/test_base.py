"""Workload base helpers: validation, address builders, loop blocks."""

import numpy as np
import pytest

from repro.workloads.base import (
    ValidationError,
    Workload,
    loop_block,
    strided_addresses,
)


class _Stub(Workload):
    name = "stub"

    def run_cape(self, cape):
        raise NotImplementedError

    def scalar_trace(self):
        raise NotImplementedError

    def simd_trace(self, lanes):
        raise NotImplementedError


def test_check_passes_on_equal_arrays():
    _Stub().check(np.array([1, 2, 3]), np.array([1, 2, 3]))


def test_check_raises_on_mismatch():
    with pytest.raises(ValidationError):
        _Stub().check(np.array([1, 2, 3]), np.array([1, 2, 4]))


def test_array_bases_do_not_overlap():
    wl = _Stub()
    assert wl.array_base(1) - wl.array_base(0) >= 1 << 20


def test_strided_addresses():
    assert strided_addresses(100, 4).tolist() == [100, 104, 108, 112]
    assert strided_addresses(0, 3, stride=64).tolist() == [0, 64, 128]


def test_loop_block_adds_control_overhead():
    block = loop_block("l", 1000, int_ops_per_iter=2)
    assert block.int_ops == 2000 + 1000 // 4  # body + loop control
    assert block.branches == 1000 // 4


def test_loop_block_minimum_one_branch():
    assert loop_block("l", 2).branches == 1
