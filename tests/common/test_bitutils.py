"""Bit explode/collapse helpers, including property-based round trips."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common.bitutils import (
    bits_to_ints,
    ints_to_bits,
    mask_lsbs,
    to_signed,
    to_unsigned,
)


def test_ints_to_bits_little_endian():
    bits = ints_to_bits(np.array([5]), 4)
    assert bits[:, 0].tolist() == [1, 0, 1, 0]  # LSB first


def test_bits_to_ints_inverse():
    values = np.array([0, 1, 2, 254, 255])
    assert bits_to_ints(ints_to_bits(values, 8)).tolist() == values.tolist()


def test_width_wraps_values():
    assert bits_to_ints(ints_to_bits(np.array([256 + 3]), 8)).tolist() == [3]


def test_negative_values_wrap_like_hardware():
    assert bits_to_ints(ints_to_bits(np.array([-1]), 8)).tolist() == [255]


@given(
    st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=50),
    st.integers(min_value=1, max_value=32),
)
def test_round_trip_property(values, width):
    arr = np.array(values, dtype=np.int64)
    out = bits_to_ints(ints_to_bits(arr, width))
    assert out.tolist() == (arr & ((1 << width) - 1)).tolist()


def test_mask_lsbs():
    assert mask_lsbs(0) == 0
    assert mask_lsbs(4) == 0xF
    assert mask_lsbs(32) == 0xFFFFFFFF
    with pytest.raises(ValueError):
        mask_lsbs(-1)


@given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_signed_unsigned_round_trip(value):
    arr = np.array([value], dtype=np.int64)
    assert to_signed(to_unsigned(arr, 32), 32).tolist() == [value]


def test_to_signed_sign_extension():
    assert to_signed(np.array([0x80]), 8).tolist() == [-128]
    assert to_signed(np.array([0x7F]), 8).tolist() == [127]


def test_bits_to_ints_rejects_bad_shape():
    with pytest.raises(ValueError):
        bits_to_ints(np.zeros(5, dtype=np.uint8))
