"""Error taxonomy: hierarchy, structured payloads, and api exports."""

import pytest

from repro.common.errors import (
    CapacityError,
    ConfigError,
    CSBCapacityError,
    DeviceFailedError,
    FaultInjectionError,
    PageFault,
    PoolStalledError,
    ProtocolError,
    ReproError,
    RetryExhaustedError,
    SpillCorruptionError,
)


def test_every_error_derives_from_repro_error():
    for exc_type in (
        ConfigError,
        CapacityError,
        CSBCapacityError,
        ProtocolError,
        PageFault,
        FaultInjectionError,
        DeviceFailedError,
        RetryExhaustedError,
        SpillCorruptionError,
        PoolStalledError,
    ):
        assert issubclass(exc_type, ReproError), exc_type


def test_fault_injection_error_is_a_config_error():
    # A malformed plan is a configuration bug: one except ConfigError at
    # an API boundary catches it.
    assert issubclass(FaultInjectionError, ConfigError)
    with pytest.raises(ConfigError):
        raise FaultInjectionError("bad plan")


def test_runtime_failures_are_not_config_errors():
    # Injected failures are operational, not configuration: they must
    # not be swallowed by config-validation handlers.
    for exc_type in (DeviceFailedError, RetryExhaustedError,
                     SpillCorruptionError, PoolStalledError):
        assert not issubclass(exc_type, ConfigError), exc_type
        assert not issubclass(exc_type, CapacityError), exc_type


def test_spill_corruption_error_names_rows_and_address():
    err = SpillCorruptionError(0x2000, [1, 3])
    assert err.addr == 0x2000
    assert err.bad_rows == (1, 3)
    assert "0x2000" in str(err)
    assert "1, 3" in str(err)


def test_pool_stalled_error_names_stuck_jobs():
    err = PoolStalledError("every device dead", ["kmeans", "hist"])
    assert err.reason == "every device dead"
    assert err.job_names == ("kmeans", "hist")
    assert "kmeans, hist" in str(err)
    empty = PoolStalledError("budget exhausted")
    assert "none" in str(empty)


def test_api_exports_the_fault_taxonomy():
    import repro.api as api

    for name in (
        "DeviceFailedError",
        "FaultInjectionError",
        "PoolStalledError",
        "RetryExhaustedError",
        "SpillCorruptionError",
        "FaultPlan",
        "FaultInjector",
        "StuckBit",
        "TagFlip",
        "ChainKill",
        "TransferFault",
        "DeviceKill",
    ):
        assert name in api.__all__, name
        assert hasattr(api, name), name
