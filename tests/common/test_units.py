"""Unit conversions and constants."""

import pytest

from repro.common.units import (
    GHZ,
    GIB,
    KIB,
    MIB,
    NS,
    PJ,
    PS,
    cycles_to_seconds,
    seconds_to_cycles,
)


def test_time_multipliers_are_si():
    assert PS == pytest.approx(1e-12)
    assert NS == pytest.approx(1e-9)
    assert 237 * PS == pytest.approx(2.37e-10)


def test_capacity_multipliers():
    assert KIB == 1024
    assert MIB == 1024 * 1024
    assert GIB == 1024 ** 3


def test_cycles_seconds_round_trip():
    freq = 2.7 * GHZ
    cycles = 1234.0
    assert seconds_to_cycles(cycles_to_seconds(cycles, freq), freq) == pytest.approx(cycles)


def test_cycles_to_seconds_at_2_7ghz():
    assert cycles_to_seconds(2.7e9, 2.7 * GHZ) == pytest.approx(1.0)


@pytest.mark.parametrize("bad", [0.0, -1.0])
def test_nonpositive_frequency_rejected(bad):
    with pytest.raises(ValueError):
        cycles_to_seconds(1.0, bad)
    with pytest.raises(ValueError):
        seconds_to_cycles(1.0, bad)
