"""ServePool: deterministic bookkeeping, process execution, healing."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.engine.system import CAPEConfig
from repro.faults import DeviceKill, FaultPlan, TagFlip, WorkerKill
from repro.obs import Observer
from repro.runtime import DevicePool, Footprint, Job
from repro.serve import JobSpec, ServePool

TINY = CAPEConfig(name="tiny", num_chains=64)
TINY2 = CAPEConfig(name="tiny2", num_chains=128)


def mixed_specs(n=10):
    specs = []
    for i in range(n):
        if i % 3 == 0:
            specs.append(
                JobSpec(
                    f"dot{i}", "dot",
                    {"x": np.arange(8) + i, "y": np.arange(8)}, lanes=8,
                )
            )
        elif i % 3 == 1:
            specs.append(
                JobSpec(
                    f"match{i}", "match_count",
                    {"data": np.arange(16) % 5, "needle": i % 5}, lanes=16,
                )
            )
        else:
            specs.append(
                JobSpec(
                    f"saxpy{i}", "saxpy_sum",
                    {"x": np.arange(8), "y": np.arange(8) + i, "a": 2},
                    lanes=8,
                )
            )
    return specs


def run_sequential(specs, configs, fault_plan=None, **kwargs):
    pool = DevicePool(configs, fault_plan=fault_plan, **kwargs)
    jobs = pool.submit_stream(
        [s.to_job() for s in specs], interarrival_cycles=10.0
    )
    report = pool.run()
    return pool, jobs, report


def run_served(specs, configs, workers=2, fault_plan=None, **kwargs):
    pool = ServePool(configs, workers=workers, fault_plan=fault_plan, **kwargs)
    jobs = pool.submit_specs(specs, interarrival_cycles=10.0)
    report = pool.run()
    return pool, jobs, report


def result_tuples(jobs):
    return [
        (
            j.name,
            j.result.output,
            j.result.service_cycles,
            j.result.energy_j,
            j.result.error,
        )
        for j in jobs
    ]


class TestDeterminism:
    def test_results_bit_identical_to_sequential(self):
        specs = mixed_specs()
        _, seq_jobs, seq_report = run_sequential(specs, [TINY, TINY2])
        _, srv_jobs, srv_report = run_served(specs, [TINY, TINY2])
        assert result_tuples(srv_jobs) == result_tuples(seq_jobs)

    def test_placement_and_telemetry_identical(self):
        specs = mixed_specs()
        _, _, seq_report = run_sequential(specs, [TINY, TINY2])
        _, _, srv_report = run_served(specs, [TINY, TINY2])
        seq = seq_report.as_dict()
        srv = srv_report.as_dict()

        def strip_ids(jobs):
            # job_id is a process-global Job counter; both pools ran in
            # this test process, so it differs by construction order.
            return [
                {k: v for k, v in job.items() if k != "job_id"}
                for job in jobs
            ]

        assert strip_ids(srv["jobs"]) == strip_ids(seq["jobs"])
        assert srv["devices"] == seq["devices"]

    def test_device_fault_plan_identical_across_tiers(self):
        # A device-scoped chaos plan (transient tag flips) must corrupt
        # the same jobs in the same way in-process and cross-process.
        plan = FaultPlan(
            seed=42,
            faults=(
                TagFlip(element=0, bit=1, at_search=3, device=0),
                TagFlip(element=1, bit=0, at_search=9, device=1),
            ),
        )
        specs = mixed_specs()
        _, seq_jobs, _ = run_sequential(
            specs, [TINY, TINY2], fault_plan=plan, backend="bitplane"
        )
        _, srv_jobs, _ = run_served(
            specs, [TINY, TINY2], fault_plan=plan, backend="bitplane"
        )
        assert result_tuples(srv_jobs) == result_tuples(seq_jobs)

    def test_one_worker_matches_many(self):
        specs = mixed_specs()
        _, one_jobs, _ = run_served(specs, [TINY, TINY2], workers=1)
        _, two_jobs, _ = run_served(specs, [TINY, TINY2], workers=2)
        assert result_tuples(one_jobs) == result_tuples(two_jobs)


class TestConstruction:
    def test_reserved_kwargs_rejected(self):
        with pytest.raises(ConfigError, match="parallelism"):
            ServePool([TINY], parallelism=4)
        with pytest.raises(ConfigError, match="plan_cache"):
            ServePool([TINY], plan_cache=False)

    def test_needs_a_worker(self):
        with pytest.raises(ConfigError):
            ServePool([TINY], workers=0)

    def test_workers_clamped_to_devices(self):
        pool = ServePool([TINY], workers=8)
        assert pool.num_workers == 1

    def test_plain_job_rejected_at_execution(self):
        pool = ServePool([TINY], workers=1)
        pool.submit(
            Job("opaque", body=lambda system: 1, footprint=Footprint(lanes=8))
        )
        with pytest.raises(ConfigError, match="JobSpec"):
            pool.run()


class TestPlanCache:
    def test_per_worker_caches_warm_and_hit(self):
        warm = JobSpec("warm", "vadd_sum", {"data": np.arange(8)}, lanes=8)
        specs = [
            JobSpec(f"s{i}", "vadd_sum", {"data": np.arange(8) + i}, lanes=8)
            for i in range(6)
        ]
        pool, jobs, _ = run_served(
            specs, [TINY, TINY], workers=2,
            backend="bitplane", plan_cache_warmup=[warm],
        )
        totals = pool.plan_cache_totals()
        assert set(totals["per_worker"]) == {0, 1}
        # Every served job hit the warmed cache; only the warmup missed.
        assert totals["total"]["hits"] >= len(specs)
        assert all(j.result.error is None for j in jobs)


class TestHealing:
    def test_worker_kill_completes_all_jobs_identically(self):
        """The acceptance path: a seeded worker kill loses a device, the
        quarantine/re-placement machinery re-runs the stranded jobs on
        survivors, and every output matches the fault-free run."""
        specs = mixed_specs(12)
        configs = [TINY, TINY2, TINY]
        _, ref_jobs, _ = run_served(specs, configs, workers=3)
        plan = FaultPlan(faults=(WorkerKill(at_job=2, worker=1),))
        pool, jobs, report = run_served(
            specs, configs, workers=3, fault_plan=plan
        )
        assert all(j.result is not None for j in jobs)
        assert {j.name: j.result.output for j in jobs} == {
            j.name: j.result.output for j in ref_jobs
        }
        dead = [d for d in pool.devices if d.health.state.name == "DEAD"]
        assert [d.device_id for d in dead] == [1]
        assert pool.worker_of[1] == 1

    def test_worker_kill_emits_observable_death(self):
        observer = Observer()
        plan = FaultPlan(faults=(WorkerKill(at_job=1, worker=0),))
        specs = mixed_specs(6)
        pool = ServePool(
            [TINY, TINY2], workers=2, fault_plan=plan, observer=observer
        )
        pool.submit_specs(specs, interarrival_cycles=10.0)
        pool.run()
        assert observer.metrics.counter("serve.worker_deaths").value == 1

    def test_remote_device_kill_walks_the_ladder(self):
        # DeviceKill fires inside the *worker's* injector; the death flag
        # rides the reply back and retires the pool-side device.
        plan = FaultPlan(faults=(DeviceKill(at_cycle=0.0, device=0),))
        specs = mixed_specs(8)
        pool, jobs, _ = run_served(
            specs, [TINY, TINY2], workers=2,
            fault_plan=plan, backend="bitplane",
        )
        assert pool.devices[0].health.state.name == "DEAD"
        assert all(j.result is not None and j.result.error is None for j in jobs)
