"""Gateway: admission, quotas, backpressure, failover, shutdown."""

import asyncio

import numpy as np
import pytest

from repro.common.errors import (
    AdmissionError,
    ConfigError,
    QuotaExceededError,
)
from repro.engine.system import CAPEConfig
from repro.faults import FaultPlan, WorkerKill
from repro.serve import (
    Gateway,
    JobSpec,
    ServeConfig,
    TenantQuota,
)

TINY = CAPEConfig(name="tiny", num_chains=64)


def dot_spec(name, i=0, tenant="default", lanes=8):
    return JobSpec(
        name, "dot", {"x": np.arange(8) + i, "y": np.arange(8)},
        lanes=lanes, tenant=tenant,
    )


def dot_golden(i=0):
    return int(((np.arange(8) + i) * np.arange(8)).sum())


def run(coro):
    return asyncio.run(coro)


class TestServing:
    def test_submit_returns_correct_results(self):
        async def main():
            async with Gateway(ServeConfig(configs=(TINY, TINY))) as gw:
                results = await asyncio.gather(
                    *(gw.submit(dot_spec(f"r{i}", i)) for i in range(8))
                )
            return results

        results = run(main())
        assert [r.output for r in results] == [dot_golden(i) for i in range(8)]
        assert all(r.ok and r.wall_s > 0 for r in results)

    def test_report_counts_and_latency_percentiles(self):
        async def main():
            async with Gateway(ServeConfig(configs=(TINY,), workers=1)) as gw:
                await asyncio.gather(
                    *(gw.submit(dot_spec(f"r{i}", i)) for i in range(5))
                )
                return gw.report()

        report = run(main())
        assert report.submitted == report.completed == 5
        assert report.rejected == 0
        as_dict = report.as_dict()
        assert as_dict["p50_latency_s"] > 0
        assert as_dict["p99_latency_s"] >= as_dict["p50_latency_s"]
        assert as_dict["plan_cache"]  # per-worker snapshots rode along

    def test_per_tenant_accounting(self):
        async def main():
            async with Gateway(ServeConfig(configs=(TINY,), workers=1)) as gw:
                await asyncio.gather(
                    gw.submit(dot_spec("a", tenant="acme")),
                    gw.submit(dot_spec("b", tenant="acme")),
                    gw.submit(dot_spec("c", tenant="umbrella")),
                )
                return gw.report()

        report = run(main())
        assert report.per_tenant == {"acme": 2, "umbrella": 1}

    def test_submit_before_start_raises(self):
        gateway = Gateway(ServeConfig(configs=(TINY,)))
        with pytest.raises(ConfigError, match="not started"):
            gateway.submit_nowait(dot_spec("early"))


class TestBackpressure:
    def test_queue_full_rejects_with_retry_after(self):
        async def main():
            cfg = ServeConfig(configs=(TINY,), workers=1, max_queue=2)
            async with Gateway(cfg) as gw:
                accepted, rejection = [], None
                for i in range(6):
                    try:
                        accepted.append(gw.submit_nowait(dot_spec(f"r{i}", i)))
                    except AdmissionError as exc:
                        rejection = exc
                await asyncio.gather(*accepted)
                return len(accepted), rejection

        n_accepted, rejection = run(main())
        assert n_accepted == 2
        assert rejection is not None and rejection.reason == "queue_full"
        assert rejection.retry_after_s is not None
        assert rejection.retry_after_s > 0

    def test_retrying_client_completes_past_shedding(self):
        async def main():
            cfg = ServeConfig(
                configs=(TINY,), workers=1, max_queue=2, retry_after_s=0.005
            )
            async with Gateway(cfg) as gw:
                results = await asyncio.gather(
                    *(
                        gw.submit_retrying(dot_spec(f"r{i}", i), attempts=50)
                        for i in range(8)
                    )
                )
                return results, gw.report()

        results, report = run(main())
        assert [r.output for r in results] == [dot_golden(i) for i in range(8)]
        assert report.completed == 8

    def test_closed_gateway_rejects(self):
        async def main():
            async with Gateway(ServeConfig(configs=(TINY,))) as gw:
                await gw.submit(dot_spec("one"))
                await gw.drain()
                with pytest.raises(AdmissionError, match="draining"):
                    gw.submit_nowait(dot_spec("late"))

        run(main())


class TestQuotas:
    def test_pending_quota_rejects_excess(self):
        async def main():
            cfg = ServeConfig(
                configs=(TINY,), workers=1,
                default_quota=TenantQuota(max_pending=2),
            )
            async with Gateway(cfg) as gw:
                accepted = [gw.submit_nowait(dot_spec(f"r{i}", i)) for i in range(2)]
                with pytest.raises(QuotaExceededError) as excinfo:
                    gw.submit_nowait(dot_spec("over"))
                await asyncio.gather(*accepted)
                # Quota released on completion: admission works again.
                await gw.submit(dot_spec("after"))
                return excinfo.value, gw.report()

        exc, report = run(main())
        assert exc.tenant == "default" and exc.reason == "quota"
        assert report.rejected_quota == 1
        assert report.completed == 3

    def test_lane_quota_uses_footprints(self):
        async def main():
            cfg = ServeConfig(
                configs=(TINY,), workers=1,
                default_quota=TenantQuota(max_pending=10, max_lanes=100),
            )
            async with Gateway(cfg) as gw:
                first = gw.submit_nowait(dot_spec("big", lanes=64))
                with pytest.raises(QuotaExceededError, match="lanes"):
                    gw.submit_nowait(dot_spec("too-big", lanes=64))
                await first

        run(main())

    def test_quotas_are_per_tenant(self):
        async def main():
            cfg = ServeConfig(
                configs=(TINY,), workers=1,
                quotas={"starved": TenantQuota(max_pending=1)},
            )
            async with Gateway(cfg) as gw:
                first = gw.submit_nowait(dot_spec("a", tenant="starved"))
                with pytest.raises(QuotaExceededError):
                    gw.submit_nowait(dot_spec("b", tenant="starved"))
                # The default-quota tenant is unaffected.
                second = gw.submit_nowait(dot_spec("c", tenant="other"))
                await asyncio.gather(first, second)

        run(main())


class TestFailover:
    def test_worker_death_retries_on_survivors(self):
        async def main():
            cfg = ServeConfig(
                configs=(TINY, TINY), workers=2,
                fault_plan=FaultPlan(faults=(WorkerKill(at_job=2, worker=0),)),
            )
            async with Gateway(cfg) as gw:
                results = await asyncio.gather(
                    *(gw.submit_retrying(dot_spec(f"r{i}", i)) for i in range(8))
                )
                return results, gw.report()

        results, report = run(main())
        assert [r.output for r in results] == [dot_golden(i) for i in range(8)]
        assert report.worker_deaths == 1
        assert report.retries >= 1
        assert any(r.retries > 0 for r in results)

    def test_total_capacity_loss_fails_pending(self):
        async def main():
            cfg = ServeConfig(
                configs=(TINY,), workers=1,
                fault_plan=FaultPlan(faults=(WorkerKill(at_job=1, worker=0),)),
                max_retries=1,
            )
            async with Gateway(cfg) as gw:
                futures = [gw.submit_nowait(dot_spec(f"r{i}", i)) for i in range(3)]
                outcomes = await asyncio.gather(*futures, return_exceptions=True)
                return outcomes, gw.report()

        outcomes, report = run(main())
        assert all(isinstance(o, Exception) for o in outcomes)
        assert report.worker_deaths == 1
        assert report.failed == 3
