"""Serving-tier resilience: breakers, transport faults, hedging, deadlines.

The contract under test (docs/SERVING.md "Resilience"): any seeded
transport-fault storm — hangs, stragglers, dropped replies, garbled
replies, process kills — that leaves capacity alive completes every
admitted job with results bit-identical to the fault-free run, and the
failure verdicts are *typed*: slow is not hung is not dead.
"""

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import (
    ConfigError,
    DeadlineExceededError,
    WorkerDiedError,
    WorkerTimeoutError,
)
from repro.engine.system import CAPEConfig
from repro.faults import (
    FaultPlan,
    ReplyDrop,
    ReplyGarble,
    SlowWorker,
    WorkerHang,
    WorkerKill,
)
from repro.runtime import DevicePool
from repro.serve import (
    Gateway,
    JobSpec,
    ResilienceConfig,
    ServeConfig,
    ServePool,
)
from repro.serve.resilience import BreakerState, CircuitBreaker
from repro.serve.worker import GARBLED_PAYLOAD, WorkerHandle, WorkerOptions

TINY = CAPEConfig(name="tiny", num_chains=64)

#: Fast-reacting policy for tests: hangs detected in ~0.4s.
FAST = ResilienceConfig(heartbeat_interval_s=0.02, hang_timeout_s=0.4)


def dot_specs(n=12, seed=3):
    rng = np.random.default_rng(seed)
    return [
        JobSpec(
            f"r{i}", "dot",
            {"x": rng.integers(0, 64, size=8), "y": rng.integers(0, 64, size=8)},
            lanes=8,
        )
        for i in range(n)
    ]


def outputs(jobs):
    return [j.result.output for j in jobs]


def sequential_outputs(specs):
    pool = DevicePool([TINY, TINY])
    jobs = pool.submit_stream([s.to_job() for s in specs])
    pool.run()
    return outputs(jobs)


# ----------------------------------------------------------------------
# CircuitBreaker unit behaviour
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        b = CircuitBreaker(trip_threshold=3, cooldown_s=1.0)
        assert not b.record_failure(now=0.0)
        assert not b.record_failure(now=0.0)
        assert b.state is BreakerState.CLOSED
        assert b.record_failure(now=0.0)  # third in a row trips
        assert b.state is BreakerState.OPEN
        assert b.trips == 1
        assert not b.allow(now=0.5)

    def test_success_resets_the_streak(self):
        b = CircuitBreaker(trip_threshold=2)
        b.record_failure(now=0.0)
        b.record_success()
        assert not b.record_failure(now=0.0)  # streak restarted
        assert b.state is BreakerState.CLOSED

    def test_half_open_probe_then_close(self):
        b = CircuitBreaker(trip_threshold=1, cooldown_s=1.0)
        b.record_failure(now=0.0)
        assert b.state is BreakerState.OPEN
        assert not b.allow(now=0.5)  # still cooling down
        assert b.allow(now=1.5)  # cooldown lapsed: the probe
        assert b.state is BreakerState.HALF_OPEN
        assert b.probes == 1
        assert not b.allow(now=1.6)  # one probe at a time
        b.record_success()
        assert b.state is BreakerState.CLOSED
        assert b.allow(now=1.7)

    def test_failed_probe_reopens_with_doubled_cooldown(self):
        b = CircuitBreaker(trip_threshold=1, cooldown_s=1.0)
        b.record_failure(now=0.0)
        assert b.open_until == pytest.approx(1.0)
        assert b.allow(now=2.0)  # probe
        assert b.record_failure(now=2.0)  # probe disproved recovery
        assert b.state is BreakerState.OPEN
        assert b.open_until == pytest.approx(4.0)  # 2.0 + doubled cooldown
        assert b.trips == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            CircuitBreaker(trip_threshold=0)
        with pytest.raises(ConfigError):
            CircuitBreaker(cooldown_s=0.0)


class TestResilienceConfig:
    def test_hedge_threshold_policy(self):
        off = ResilienceConfig(hedge=False)
        assert off.hedge_threshold(0.1) is None
        explicit = ResilienceConfig(hedge=True, hedge_after_s=0.25)
        assert explicit.hedge_threshold(5.0) == 0.25
        derived = ResilienceConfig(hedge=True, hedge_multiplier=4.0)
        assert derived.hedge_threshold(None) is None  # no EWMA yet
        assert derived.hedge_threshold(0.1) == pytest.approx(0.4)
        assert derived.hedge_threshold(1e-6) == 0.01  # the floor

    def test_validation(self):
        with pytest.raises(ConfigError):
            ResilienceConfig(hang_timeout_s=0.0)
        with pytest.raises(ConfigError):
            ResilienceConfig(hedge_after_s=-1.0)
        with pytest.raises(ConfigError):
            ResilienceConfig(hedge_multiplier=1.0)
        with pytest.raises(ConfigError):
            ResilienceConfig(default_deadline_s=0.0)

    def test_make_breaker_respects_disable(self):
        assert ResilienceConfig(breaker_threshold=0).make_breaker() is None
        b = ResilienceConfig(breaker_threshold=5).make_breaker()
        assert b.trip_threshold == 5


# ----------------------------------------------------------------------
# WorkerHandle: the recv split + worker-side injection
# ----------------------------------------------------------------------


def make_handle(fault_plan=None, heartbeat_interval_s=0.0):
    return WorkerHandle(
        0,
        [(0, TINY)],
        WorkerOptions(
            fault_plan=fault_plan, heartbeat_interval_s=heartbeat_interval_s
        ),
    ).start()


def recv_result(handle, timeout=30.0):
    """Next non-heartbeat frame."""
    while True:
        msg = handle.recv(timeout=timeout)
        if msg[0] != "heartbeat":
            return msg


class TestWorkerTransport:
    def test_recv_timeout_from_live_worker_is_not_death(self):
        handle = make_handle()
        try:
            with pytest.raises(WorkerTimeoutError):
                handle.recv(timeout=0.05)  # nothing owed, just silent
            assert handle.alive
            # And the pipe still works afterwards.
            handle.send_run(0, 0, dot_specs(1)[0])
            kind, seq, reply = recv_result(handle)
            assert (kind, seq) == ("result", 0)
            assert reply["error"] is None
        finally:
            handle.shutdown()

    def test_dropped_reply_executes_but_never_arrives(self):
        plan = FaultPlan(faults=(ReplyDrop(at_job=1),))
        handle = make_handle(fault_plan=plan)
        try:
            specs = dot_specs(2)
            handle.send_run(0, 0, specs[0])
            handle.send_run(1, 0, specs[1])
            kind, seq, reply = recv_result(handle)
            # Job 1's reply vanished; job 2 answers first — and its
            # lifetime counter proves job 1 ran.
            assert (kind, seq) == ("result", 1)
            assert reply["jobs_executed"] == 2
            handle.send_stats(2)
            stats = recv_result(handle)[2]
            assert stats["transport_injected"]["drop"] == 1
        finally:
            handle.shutdown()

    def test_garbled_reply_carries_the_marker_payload(self):
        plan = FaultPlan(faults=(ReplyGarble(at_job=1),))
        handle = make_handle(fault_plan=plan)
        try:
            handle.send_run(0, 0, dot_specs(1)[0])
            kind, seq, payload = recv_result(handle)
            assert (kind, seq) == ("result", 0)
            assert payload == GARBLED_PAYLOAD
            assert not isinstance(payload, dict)
        finally:
            handle.shutdown()

    def test_expired_deadline_is_cheap_cancelled(self):
        handle = make_handle()
        try:
            handle.send_run(0, 0, dot_specs(1)[0], deadline_s=-0.5)
            _, _, reply = recv_result(handle)
            assert reply["deadline_cancelled"]
            assert "DeadlineExceededError" in reply["error"]
            # A live deadline executes normally.
            handle.send_run(1, 0, dot_specs(1)[0], deadline_s=30.0)
            _, _, reply = recv_result(handle)
            assert reply["error"] is None
            assert not reply.get("deadline_cancelled")
        finally:
            handle.shutdown()

    def test_heartbeats_flow_while_a_slow_job_stalls_the_reply(self):
        plan = FaultPlan(faults=(SlowWorker(delay_s=0.3, at_jobs=(1,)),))
        handle = make_handle(fault_plan=plan, heartbeat_interval_s=0.02)
        try:
            handle.send_run(0, 0, dot_specs(1)[0])
            beats = 0
            while True:
                msg = handle.recv(timeout=10.0)
                if msg[0] == "heartbeat":
                    beats += 1
                    continue
                break
            assert msg[0] == "result"
            assert beats >= 2  # the pipe was never silent during the stall
        finally:
            handle.shutdown()

    def test_hung_worker_goes_fully_silent_but_stays_alive(self):
        plan = FaultPlan(faults=(WorkerHang(at_job=1),))
        handle = make_handle(fault_plan=plan, heartbeat_interval_s=0.02)
        try:
            handle.send_run(0, 0, dot_specs(1)[0])
            with pytest.raises(WorkerTimeoutError):
                while True:  # drain straggler heartbeats, then silence
                    handle.recv(timeout=0.3)
            assert handle.alive  # hung, not dead — the taxonomy's point
        finally:
            handle.terminate()


# ----------------------------------------------------------------------
# ServePool resilience (deterministic tier)
# ----------------------------------------------------------------------


class TestServePoolResilience:
    def test_slow_worker_is_not_a_death(self):
        specs = dot_specs(6)
        plan = FaultPlan(faults=(SlowWorker(delay_s=0.2, at_jobs=(1,)),))
        pool = ServePool(
            [TINY, TINY], workers=2, fault_plan=plan, resilience=FAST
        )
        jobs = pool.submit_specs(specs)
        pool.run()
        assert outputs(jobs) == sequential_outputs(specs)
        assert not pool._dead_worker_ids  # nobody was declared dead
        assert not pool._unresponsive_worker_ids

    def test_storm_results_bit_identical_to_sequential(self):
        specs = dot_specs(12)
        plan = FaultPlan(
            faults=(
                SlowWorker(delay_s=0.1, at_jobs=(2,), worker=0),
                ReplyDrop(at_job=2, worker=1),
                ReplyGarble(at_job=4, worker=0),
            ),
        )
        pool = ServePool(
            [TINY, TINY], workers=2, fault_plan=plan,
            resilience=FAST, worker_timeout=5.0,
        )
        jobs = pool.submit_specs(specs)
        pool.run()
        assert outputs(jobs) == sequential_outputs(specs)

    def test_hang_is_detected_and_counted_separately(self):
        specs = dot_specs(8)
        plan = FaultPlan(faults=(WorkerHang(at_job=2, worker=1),))
        pool = ServePool(
            [TINY, TINY], workers=2, fault_plan=plan,
            resilience=FAST, worker_timeout=5.0,
        )
        jobs = pool.submit_specs(specs)
        pool.run()
        assert outputs(jobs) == sequential_outputs(specs)
        assert 1 in pool._unresponsive_worker_ids
        assert 1 in pool._dead_worker_ids  # routed around like a death

    def test_hedged_storm_matches_sequential(self):
        specs = dot_specs(10)
        plan = FaultPlan(faults=(ReplyDrop(at_job=2, worker=0),))
        pool = ServePool(
            [TINY, TINY], workers=2, fault_plan=plan,
            resilience=ResilienceConfig(
                heartbeat_interval_s=0.02, hang_timeout_s=0.4,
                hedge=True, hedge_after_s=0.05,
            ),
            worker_timeout=5.0,
        )
        jobs = pool.submit_specs(specs)
        pool.run()
        assert outputs(jobs) == sequential_outputs(specs)


# ----------------------------------------------------------------------
# Gateway resilience (live tier)
# ----------------------------------------------------------------------


def gw_config(fault_plan=None, resilience=FAST, **kw):
    kw.setdefault("configs", (TINY,) * 4)
    kw.setdefault("workers", 4)
    kw.setdefault("worker_timeout", 5.0)
    return ServeConfig(fault_plan=fault_plan, resilience=resilience, **kw)


async def gather_results(gw, specs, attempts=50):
    return await asyncio.gather(
        *[gw.submit_retrying(s, attempts=attempts) for s in specs]
    )


def gw_outputs(results):
    return [r.output for r in sorted(results, key=lambda r: int(r.name[1:]))]


class TestGatewayResilience:
    def test_storm_completes_all_jobs_bit_identical(self):
        specs = dot_specs(16)
        want = sequential_outputs(specs)
        plan = FaultPlan(
            faults=(
                SlowWorker(delay_s=0.15, at_jobs=(2,), worker=0),
                ReplyDrop(at_job=2, worker=1),
                ReplyGarble(at_job=2, worker=2),
                WorkerHang(at_job=3, worker=3),
            ),
        )

        async def main():
            async with Gateway(gw_config(plan, worker_timeout=1.0)) as gw:
                results = await gather_results(gw, specs)
                return results, gw.report()

        results, report = asyncio.run(main())
        assert gw_outputs(results) == want
        assert report.completed == 16
        assert report.worker_unresponsive == 1
        assert report.worker_deaths == 0  # hang ≠ death in the ledger
        assert report.transport_faults.get("dropped", 0) >= 1
        assert report.transport_faults.get("garbled", 0) >= 1

    def test_hedging_wins_races_against_losses(self):
        specs = dot_specs(16)
        want = sequential_outputs(specs)
        plan = FaultPlan(
            faults=(
                ReplyDrop(at_job=2, worker=0),
                WorkerHang(at_job=3, worker=1),
            ),
        )
        resilience = ResilienceConfig(
            heartbeat_interval_s=0.02, hang_timeout_s=0.4,
            hedge=True, hedge_after_s=0.05,
        )

        async def main():
            async with Gateway(gw_config(plan, resilience)) as gw:
                results = await gather_results(gw, specs)
                return results, gw.report()

        results, report = asyncio.run(main())
        assert gw_outputs(results) == want
        assert report.completed == 16
        assert report.hedges_issued >= 1
        assert (
            report.hedges_won + report.hedges_wasted <= report.hedges_issued
        )

    def test_breaker_trips_on_consecutive_garbles_and_recovers(self):
        specs = dot_specs(12)
        want = sequential_outputs(specs)
        plan = FaultPlan(
            faults=tuple(ReplyGarble(at_job=j, worker=0) for j in (1, 2, 3)),
        )
        resilience = ResilienceConfig(
            heartbeat_interval_s=0.02, hang_timeout_s=0.4,
            breaker_threshold=3, breaker_cooldown_s=0.1,
        )

        async def main():
            async with Gateway(
                gw_config(plan, resilience, configs=(TINY, TINY), workers=2)
            ) as gw:
                results = await gather_results(gw, specs)
                return results, gw.report()

        results, report = asyncio.run(main())
        assert gw_outputs(results) == want
        assert report.transport_faults.get("garbled", 0) == 3
        assert report.breaker_trips >= 1

    def test_drain_racing_worker_death_loses_nothing(self):
        """ISSUE 9 satellite: orphans re-queue or fail, never vanish."""
        specs = dot_specs(12)
        want = sequential_outputs(specs)
        plan = FaultPlan(faults=(WorkerKill(at_job=2, worker=1),))

        async def main():
            gw = Gateway(gw_config(plan))
            await gw.start()
            futures = [gw.submit_nowait(s) for s in specs]
            drain = asyncio.create_task(gw.drain())
            results = await asyncio.gather(*futures, return_exceptions=True)
            await drain
            report = gw.report()
            await gw.close()
            return results, report

        results, report = asyncio.run(main())
        # Every admitted request resolved: a result or a typed error.
        assert len(results) == len(specs)
        okay = [r for r in results if not isinstance(r, BaseException)]
        errs = [r for r in results if isinstance(r, BaseException)]
        assert all(
            isinstance(e, (WorkerDiedError, WorkerTimeoutError))
            for e in errs
        )
        assert report.completed == len(okay)
        assert report.completed + report.failed == len(specs)
        # With three surviving workers the retries should all land.
        assert not errs
        assert gw_outputs(okay) == want

    def test_queued_deadline_is_cancelled_not_run(self):
        async def main():
            cfg = gw_config(
                None,
                ResilienceConfig(
                    heartbeat_interval_s=0.02, hang_timeout_s=0.4,
                ),
                configs=(TINY,),
                workers=1,
                max_queue=64,
            )
            async with Gateway(cfg) as gw:
                blockers = [
                    gw.submit_nowait(s) for s in dot_specs(4, seed=11)
                ]
                doomed = gw.submit_nowait(
                    JobSpec(
                        "doomed", "dot",
                        {"x": np.arange(8), "y": np.arange(8)},
                        lanes=8, deadline_s=1e-4,
                    )
                )
                results = await asyncio.gather(
                    *blockers, doomed, return_exceptions=True
                )
                return results, gw.report()

        results, report = asyncio.run(main())
        assert isinstance(results[-1], DeadlineExceededError)
        assert all(not isinstance(r, BaseException) for r in results[:-1])
        assert report.deadline_cancelled == 1

    def test_generous_deadlines_count_met(self):
        specs = [
            JobSpec(
                f"r{i}", "dot",
                {"x": np.arange(8) + i, "y": np.arange(8)},
                lanes=8, deadline_s=30.0,
            )
            for i in range(6)
        ]

        async def main():
            async with Gateway(gw_config()) as gw:
                await gather_results(gw, specs)
                return gw.report()

        report = asyncio.run(main())
        assert report.deadline_met == 6
        assert report.deadline_missed == 0


# ----------------------------------------------------------------------
# Property: any storm with hedging on is bit-identical to fault-free
# ----------------------------------------------------------------------


class TestStormProperty:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_seeded_storm_with_hedging_matches_fault_free(self, seed):
        specs = dot_specs(10, seed=5)
        want = sequential_outputs(specs)
        plan = FaultPlan.transport_storm(
            seed,
            workers=3,
            hangs=1,
            slows=1,
            drops=1,
            garbles=1,
            max_job=6,
            slow_delay_s=(0.02, 0.1),
        )
        resilience = ResilienceConfig(
            heartbeat_interval_s=0.02, hang_timeout_s=0.4,
            hedge=True, hedge_after_s=0.05,
        )

        async def main():
            cfg = gw_config(
                plan, resilience, configs=(TINY,) * 3, workers=3,
                worker_timeout=2.0,
            )
            async with Gateway(cfg) as gw:
                return await gather_results(gw, specs)

        results = asyncio.run(main())
        assert gw_outputs(results) == want

    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_storm_replays_bit_for_bit_under_same_seed(self, seed):
        a = FaultPlan.transport_storm(seed, workers=3, kills=1)
        b = FaultPlan.transport_storm(seed, workers=3, kills=1)
        assert a == b
        assert a.transport_for_worker(1) == b.transport_for_worker(1)


# ----------------------------------------------------------------------
# The long soak (slow marker; check.sh runs it in the slow stage)
# ----------------------------------------------------------------------


@pytest.mark.slow
class TestChaosSoak:
    def test_long_storm_with_kills_completes_everything(self):
        specs = dot_specs(48, seed=13)
        want = sequential_outputs(specs)
        plan = FaultPlan.transport_storm(
            99, workers=4, hangs=1, slows=3, drops=3, garbles=3, kills=1,
            max_job=16, slow_delay_s=(0.05, 0.2),
        )
        resilience = ResilienceConfig(
            heartbeat_interval_s=0.02, hang_timeout_s=0.5,
            hedge=True, hedge_after_s=0.1,
        )

        async def main():
            cfg = gw_config(
                plan, resilience, configs=(TINY,) * 4, workers=4,
                worker_timeout=2.0, max_queue=128,
            )
            async with Gateway(cfg) as gw:
                results = await gather_results(gw, specs)
                return results, gw.report()

        results, report = asyncio.run(main())
        assert gw_outputs(results) == want
        assert report.completed == 48
