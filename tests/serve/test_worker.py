"""Worker processes: the pipe protocol, shard state, and crash paths."""

import numpy as np
import pytest

from repro.common.errors import ConfigError, WorkerDiedError
from repro.engine.system import CAPEConfig
from repro.faults import FaultPlan, StuckBit, WorkerKill
from repro.serve import (
    KILLED_EXIT_CODE,
    JobSpec,
    WorkerHandle,
    WorkerOptions,
)

TINY = CAPEConfig(name="tiny", num_chains=64)


def make_handle(fault_plan=None, warmup=(), devices=((0, TINY), (1, TINY))):
    options = WorkerOptions(warmup=tuple(warmup), fault_plan=fault_plan)
    return WorkerHandle(0, devices, options).start()


def dot_spec(name="d", i=0):
    return JobSpec(
        name, "dot", {"x": np.arange(8) + i, "y": np.arange(8)}, lanes=8
    )


class TestProtocol:
    def test_run_reply_matches_in_process_execution(self):
        handle = make_handle()
        try:
            handle.send_run(7, 0, dot_spec())
            kind, seq, reply = handle.recv(timeout=30)
            assert (kind, seq) == ("result", 7)
            assert reply["output"] == int((np.arange(8) ** 2).sum())
            assert reply["error"] is None
            assert reply["device_dead"] is False
            assert reply["worker_id"] == 0 and reply["device_id"] == 0
            assert reply["jobs_executed"] == 1
        finally:
            handle.shutdown()

    def test_replies_arrive_in_request_order(self):
        handle = make_handle()
        try:
            for seq in range(3):
                handle.send_run(seq, seq % 2, dot_spec(f"j{seq}", i=seq))
            seqs = [handle.recv(timeout=30)[1] for _ in range(3)]
            assert seqs == [0, 1, 2]
        finally:
            handle.shutdown()

    def test_stats_reply_covers_all_devices(self):
        plan = FaultPlan(
            seed=1,
            faults=(StuckBit(row=1, element=0, bit=0, value=1, device=0),),
        )
        handle = make_handle(fault_plan=plan)
        try:
            handle.send_run(0, 0, dot_spec())
            handle.recv(timeout=30)
            handle.send_stats(1)
            kind, seq, stats = handle.recv(timeout=30)
            assert (kind, seq) == ("stats", 1)
            assert stats["jobs_executed"] == 1
            assert set(stats["devices"]) == {0, 1}
            assert stats["devices"][0] is not None  # injector report
        finally:
            handle.shutdown()

    def test_malformed_spec_costs_one_error_reply_not_the_worker(self):
        handle = make_handle()
        try:
            handle.send_run(0, 0, JobSpec("bad", "no_such_kernel"))
            _, _, reply = handle.recv(timeout=30)
            assert "no_such_kernel" in reply["error"]
            # The worker is still serving.
            handle.send_run(1, 0, dot_spec())
            _, _, reply = handle.recv(timeout=30)
            assert reply["error"] is None
        finally:
            handle.shutdown()

    def test_clean_shutdown_exit_code_zero(self):
        handle = make_handle()
        handle.shutdown()
        assert handle.exitcode == 0

    def test_foreign_device_rejected_locally(self):
        handle = make_handle(devices=((3, TINY),))
        try:
            with pytest.raises(ConfigError, match="not owned"):
                handle.send_run(0, 99, dot_spec())
        finally:
            handle.shutdown()


class TestWarmup:
    def test_warmup_preloads_the_plan_cache(self):
        spec = JobSpec("w", "vadd_sum", {"data": np.arange(8)}, lanes=8)
        options = WorkerOptions(backend="bitplane", warmup=(spec,))
        handle = WorkerHandle(0, ((0, TINY),), options).start()
        try:
            handle.send_stats(0)
            _, _, stats = handle.recv(timeout=30)
            assert stats["plan_cache"]["entries"] > 0
            warm_misses = stats["plan_cache"]["misses"]
            handle.send_run(1, 0, spec)
            _, _, reply = handle.recv(timeout=30)
            # The served job hit the warmed cache: no new compilations.
            assert reply["plan_cache"]["misses"] == warm_misses
            assert reply["plan_cache"]["hits"] > 0
        finally:
            handle.shutdown()


class TestWorkerKill:
    def test_injected_kill_crashes_at_the_job_boundary(self):
        plan = FaultPlan(faults=(WorkerKill(at_job=2, worker=0),))
        handle = make_handle(fault_plan=plan)
        try:
            handle.send_run(0, 0, dot_spec("ok"))
            _, _, reply = handle.recv(timeout=30)
            assert reply["error"] is None
            handle.send_run(1, 0, dot_spec("doomed"))
            with pytest.raises(WorkerDiedError):
                handle.recv(timeout=30)
            handle._process.join(10)
            assert handle.exitcode == KILLED_EXIT_CODE
        finally:
            handle.shutdown()

    def test_kill_for_other_worker_is_ignored(self):
        plan = FaultPlan(faults=(WorkerKill(at_job=1, worker=5),))
        handle = make_handle(fault_plan=plan)
        try:
            handle.send_run(0, 0, dot_spec())
            _, _, reply = handle.recv(timeout=30)
            assert reply["error"] is None
        finally:
            handle.shutdown()

    def test_send_after_death_raises(self):
        plan = FaultPlan(faults=(WorkerKill(at_job=1, worker=None),))
        handle = make_handle(fault_plan=plan)
        try:
            handle.send_run(0, 0, dot_spec())
            with pytest.raises(WorkerDiedError):
                handle.recv(timeout=30)
            handle._process.join(10)
            with pytest.raises(WorkerDiedError):
                for _ in range(64):  # a pipe buffers; keep pushing
                    handle.send_run(1, 0, dot_spec())
        finally:
            handle.shutdown()
