"""The serving-tier data plane: shm descriptors, batching, zero leaks.

The contract under test (docs/SERVING.md "Wire format & data plane"):
the wire mode changes *how bytes move*, never *what arrives* — results,
placement, and telemetry are bit-identical between ``wire="shm"`` and
``wire="pickle"``; every parent-owned segment is unlinked by close()
(including after worker kills); and a lost or garbled *batched* frame
resolves every member through the same transport detectors as a
single-job frame.
"""

import asyncio
import glob
import pickle
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.common.errors import ConfigError, WorkerDiedError
from repro.engine.system import CAPEConfig
from repro.faults import FaultPlan, ReplyDrop, ReplyGarble, WorkerKill
from repro.runtime import DevicePool, ExecConfig
from repro.serve import (
    Gateway,
    JobSpec,
    ResilienceConfig,
    ServeConfig,
    ServePool,
    ShmRef,
    SlabArena,
    WIRE_MODES,
    kernel_names,
    payload_nbytes,
    resolve_wire_mode,
    shm_available,
)
from repro.serve.shm import DEFAULT_MIN_BYTES, HostWire, WorkerWire
from repro.serve.spec import KERNELS, register_kernel
from repro.serve.worker import WorkerHandle, WorkerOptions

TINY = CAPEConfig(name="tiny", num_chains=64)

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="platform has no shared memory"
)


def big_array(elements=1_000_000, seed=0):
    return (np.arange(elements, dtype=np.int64) * 13 + seed) % 4099


def shm_residue():
    return glob.glob("/dev/shm/cape-wire-*") + glob.glob("/dev/shm/cape-ring-*")


def assert_unlinked(names):
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def dot_specs(n=10):
    return [
        JobSpec(
            f"r{i}", "dot",
            {"x": np.arange(8) + i, "y": np.arange(8) + 1}, lanes=8,
        )
        for i in range(n)
    ]


def sequential_outputs(specs, configs=(TINY, TINY)):
    pool = DevicePool(list(configs))
    jobs = pool.submit_stream([s.to_job() for s in specs])
    pool.run()
    return [j.result.output for j in jobs]


# ----------------------------------------------------------------------
# Mode resolution + config surfaces
# ----------------------------------------------------------------------


class TestWireMode:
    def test_modes_and_validation(self):
        assert WIRE_MODES == ("auto", "shm", "pickle")
        assert resolve_wire_mode("pickle") == "pickle"
        with pytest.raises(ConfigError):
            resolve_wire_mode("carrier-pigeon")

    @needs_shm
    def test_auto_resolves_to_shm_when_available(self):
        assert resolve_wire_mode("auto") == "shm"
        assert resolve_wire_mode("shm") == "shm"

    def test_exec_config_validates_wire(self):
        assert ExecConfig().wire == "auto"
        assert ExecConfig().batch_window_s == 0.0
        with pytest.raises(ConfigError):
            ExecConfig(wire="smoke-signals")
        with pytest.raises(ConfigError):
            ExecConfig(batch_window_s=-0.1)

    def test_serve_config_validates_wire(self):
        with pytest.raises(ConfigError):
            ServeConfig(wire="smoke-signals")
        with pytest.raises(ConfigError):
            ServeConfig(batch_window_s=-1.0)

    def test_exec_clashes_with_serve_config_wire(self):
        with pytest.raises(ConfigError, match="wire"):
            Gateway(ServeConfig(wire="pickle"), exec=ExecConfig())

    def test_payload_nbytes_counts_data_not_envelope(self):
        arr = np.zeros(100, dtype=np.int64)
        ref = ShmRef("seg", 0, (100,), "int64")
        assert payload_nbytes(arr) == 800
        assert payload_nbytes(ref) == 800
        assert payload_nbytes({"a": arr, "b": 3}) == 808
        assert payload_nbytes([arr, arr]) == 1600
        assert payload_nbytes(None) == 0


# ----------------------------------------------------------------------
# Arena + ring primitives
# ----------------------------------------------------------------------


@needs_shm
class TestSlabArena:
    def test_alloc_free_recycles_slab_in_place(self):
        arena = SlabArena(slab_bytes=1 << 16, max_bytes=1 << 18)
        try:
            arr = np.arange(1024, dtype=np.int64)  # 8 KiB
            ref, token = arena.alloc(arr)
            assert ref.nbytes == arr.nbytes
            names = arena.segment_names()
            assert len(names) == 1
            arena.free(token)
            # The empty slab was recycled, not replaced: same segment.
            ref2, token2 = arena.alloc(arr)
            assert ref2.segment == names[0]
            assert ref2.offset == 0
            arena.free(token2)
        finally:
            arena.close()

    def test_exhaustion_returns_none_not_error(self):
        arena = SlabArena(slab_bytes=1 << 12, max_bytes=1 << 12)
        try:
            a = np.arange(256, dtype=np.int64)  # 2 KiB of a 4 KiB cap
            out1 = arena.alloc(a)
            assert out1 is not None
            assert arena.alloc(np.arange(1024, dtype=np.int64)) is None
        finally:
            arena.close()

    def test_close_unlinks_every_slab(self):
        arena = SlabArena()
        arena.alloc(big_array(100_000))
        names = arena.segment_names()
        assert names
        arena.close()
        assert_unlinked(names)


# ----------------------------------------------------------------------
# Spec round-trips: >=1M-element payloads, every kernel, both modes
# ----------------------------------------------------------------------


@needs_shm
class TestSpecRoundTrip:
    @pytest.mark.parametrize("mode", ["shm", "pickle"])
    def test_megapayload_roundtrip_every_kernel(self, mode):
        """A 1M-element payload survives encode -> pickle -> decode for
        every registered kernel, bit for bit, in both wire modes."""
        host = HostWire(mode)
        worker = WorkerWire(None, DEFAULT_MIN_BYTES)
        try:
            for i, name in enumerate(kernel_names()):
                data = big_array(1_000_000, seed=i)
                golden = big_array(1_000_000, seed=i + 100)
                spec = JobSpec(
                    f"rt-{name}", name,
                    {"data": data, "x": data, "a": 3, "source": "nop"},
                    lanes=64, golden=golden,
                )
                wire_spec, tokens = host.encode_spec(spec)
                if mode == "shm":
                    assert tokens, f"{name}: big arrays should hit the arena"
                    assert isinstance(wire_spec.payload["data"], ShmRef)
                    # The descriptor crosses the pipe tiny: no array bytes.
                    assert len(pickle.dumps(wire_spec)) < 64 * 1024
                else:
                    assert tokens == ()
                    assert wire_spec is spec
                received = pickle.loads(pickle.dumps(wire_spec))
                decoded = worker.decode_spec(received)
                assert np.array_equal(decoded.payload["data"], data)
                assert np.array_equal(decoded.payload["x"], data)
                assert decoded.payload["a"] == 3
                assert np.array_equal(decoded.golden, golden)
                host.free(tokens)
        finally:
            worker.close()
            host.close()

    def test_small_arrays_stay_inline(self):
        host = HostWire("shm")
        try:
            spec = JobSpec("s", "dot", {"x": np.arange(8)}, lanes=8)
            wire_spec, tokens = host.encode_spec(spec)
            assert wire_spec is spec
            assert tokens == ()
            assert host.stats["shm_hits"] == 0
        finally:
            host.close()

    def test_arena_exhaustion_falls_back_inline(self):
        host = HostWire("shm")
        host._arena = SlabArena(slab_bytes=1 << 12, max_bytes=1 << 12)
        try:
            spec = JobSpec(
                "s", "dot", {"x": big_array(100_000)}, lanes=8
            )
            wire_spec, tokens = host.encode_spec(spec)
            assert tokens == ()
            assert isinstance(wire_spec.payload["x"], np.ndarray)
            assert host.stats["fallbacks"] == 1
        finally:
            host.close()


# ----------------------------------------------------------------------
# Live tiers: bit-identity across modes, array results, accounting
# ----------------------------------------------------------------------


def run_serve_pool(specs, wire, workers=2):
    pool = ServePool([TINY, TINY], workers=workers, wire=wire)
    jobs = pool.submit_specs(specs, interarrival_cycles=10.0)
    pool.run()
    return [j.result.output for j in jobs], pool.wire_stats


@needs_shm
class TestServePoolWire:
    def test_shm_pickle_and_sequential_agree(self):
        specs = [
            JobSpec(
                f"m{i}", "match_count",
                {"data": big_array(2048, seed=i) % 7, "needle": i % 7},
                lanes=64,
            )
            for i in range(8)
        ]
        want = sequential_outputs(specs)
        got_shm, stats_shm = run_serve_pool(specs, "shm")
        got_pickle, stats_pickle = run_serve_pool(specs, "pickle")
        assert got_shm == want
        assert got_pickle == want
        assert stats_shm["mode"] == "shm"
        assert stats_shm["shm_hits"] > 0
        assert stats_pickle["mode"] == "pickle"
        assert stats_pickle["shm_hits"] == 0
        # Every dispatch rode a counted frame in both modes.
        assert stats_shm["frames"] >= 8
        assert stats_pickle["frames"] >= 8

    def test_array_results_ride_the_reply_ring(self):
        """A kernel returning a big array exercises the worker->parent
        ring; outputs stay bit-identical to the pickle plane."""
        name = "wire_echo_test"

        @register_kernel(name)
        def _echo(system, payload):
            data = np.asarray(payload["data"], dtype=np.int64)
            system.vsetvl(64)
            return data * 2

        try:
            specs = [
                JobSpec(
                    f"e{i}", name, {"data": big_array(100_000, seed=i)},
                    lanes=64,
                )
                for i in range(4)
            ]
            got_shm, stats_shm = run_serve_pool(specs, "shm")
            got_pickle, _ = run_serve_pool(specs, "pickle")
            for a, b in zip(got_shm, got_pickle):
                assert np.array_equal(a, b)
            assert stats_shm["bytes_in"] > 0  # replies used the ring
        finally:
            KERNELS.pop(name, None)


# ----------------------------------------------------------------------
# Gateway: micro-batching, payload accounting, bit-identity
# ----------------------------------------------------------------------


def run_gateway(specs, wire, window_s=0.0, fault_plan=None,
                resilience=None, workers=2, timeout=5.0, devices=None):
    async def main():
        cfg = ServeConfig(
            configs=(TINY,) * (devices or workers), workers=workers,
            max_queue=max(64, len(specs)), fault_plan=fault_plan,
            worker_timeout=timeout,
            resilience=resilience or ResilienceConfig(),
            wire=wire, batch_window_s=window_s,
        )
        async with Gateway(cfg) as gw:
            results = await asyncio.gather(
                *[gw.submit_retrying(s, attempts=50) for s in specs]
            )
            names = gw._host_wire.segment_names()
            return results, gw.report(), dict(gw.wire_stats), names

    return asyncio.run(main())


@needs_shm
class TestGatewayWire:
    def test_batched_shm_identical_to_pickle_and_sequential(self):
        specs = dot_specs(12)
        want = sequential_outputs(specs)

        def by_name(results):
            return [
                r.output
                for r in sorted(results, key=lambda r: int(r.name[1:]))
            ]

        shm_results, shm_report, shm_stats, _ = run_gateway(
            specs, "shm", window_s=0.005
        )
        pk_results, pk_report, pk_stats, _ = run_gateway(specs, "pickle")
        assert by_name(shm_results) == want
        assert by_name(pk_results) == want
        # Payload accounting is data bytes, identical across planes.
        assert shm_report.payload_bytes_out == pk_report.payload_bytes_out > 0
        assert shm_report.payload_bytes_in == pk_report.payload_bytes_in > 0
        assert "payload_bytes_out" in shm_report.as_dict()
        assert shm_stats["frames"] > 0

    def test_batch_window_coalesces_frames(self):
        specs = [
            JobSpec(
                f"b{i}", "match_count",
                {"data": big_array(65_536, seed=i) % 7, "needle": i % 7},
                lanes=64,
            )
            for i in range(16)
        ]
        # 2 workers owning 2 devices each: a full round gives every
        # worker a 2-job frame.
        _, _, stats, _ = run_gateway(
            specs, "shm", window_s=0.01, workers=2, devices=4
        )
        assert stats["batched_jobs"] == 16
        # Coalescing happened: fewer frames than jobs on average.
        assert stats["frames"] < 16


# ----------------------------------------------------------------------
# Zero leaked segments (incl. the worker-kill path)
# ----------------------------------------------------------------------


@needs_shm
class TestZeroLeak:
    def test_gateway_close_unlinks_everything(self):
        specs = dot_specs(8)
        _, _, _, names = run_gateway(specs, "shm", window_s=0.002)
        assert names  # arena slabs and/or reply rings existed
        assert_unlinked(names)
        assert shm_residue() == []

    def test_gateway_close_unlinks_after_worker_kill(self):
        specs = dot_specs(10)
        want = sequential_outputs(specs)
        plan = FaultPlan(faults=(WorkerKill(at_job=2, worker=1),))
        results, report, _, names = run_gateway(
            specs, "shm", window_s=0.002, fault_plan=plan,
            resilience=ResilienceConfig(
                heartbeat_interval_s=0.02, hang_timeout_s=0.4
            ),
            timeout=2.0,
        )
        assert report.worker_deaths == 1
        assert [
            r.output for r in sorted(results, key=lambda r: int(r.name[1:]))
        ] == want
        assert names
        assert_unlinked(names)
        assert shm_residue() == []

    def test_serve_pool_run_leaves_no_residue(self):
        specs = [
            JobSpec(
                f"p{i}", "vadd_sum", {"data": big_array(65_536, seed=i)},
                lanes=64,
            )
            for i in range(4)
        ]
        run_serve_pool(specs, "shm")
        assert shm_residue() == []

    def test_serve_pool_worker_kill_leaves_no_residue(self):
        specs = dot_specs(10)
        plan = FaultPlan(faults=(WorkerKill(at_job=2, worker=0),))
        pool = ServePool(
            [TINY, TINY], workers=2, wire="shm", fault_plan=plan
        )
        jobs = pool.submit_specs(specs, interarrival_cycles=10.0)
        pool.run()
        assert all(j.result is not None for j in jobs)
        assert shm_residue() == []


# ----------------------------------------------------------------------
# The satellite fix: WorkerDiedError names the worker and frame kind
# ----------------------------------------------------------------------


class TestWorkerDiedMessage:
    def test_send_failure_names_worker_and_frame_kind(self):
        handle = WorkerHandle(3, [(0, TINY)], WorkerOptions()).start()
        try:
            handle.terminate(timeout=5.0)
            with pytest.raises(WorkerDiedError) as exc_info:
                for _ in range(64):  # pipe buffers may absorb a few
                    handle.send_run(0, 0, dot_specs(1)[0])
            message = str(exc_info.value)
            assert "worker 3" in message
            assert "'run' frame" in message
        finally:
            handle.terminate(timeout=5.0)

    def test_send_runs_failure_names_the_frame_kind(self):
        handle = WorkerHandle(5, [(0, TINY)], WorkerOptions()).start()
        try:
            handle.terminate(timeout=5.0)
            with pytest.raises(WorkerDiedError) as exc_info:
                for _ in range(64):
                    handle.send_runs(0, [(0, dot_specs(1)[0], None)])
            message = str(exc_info.value)
            assert "worker 5" in message
            assert "'runs' frame" in message
        finally:
            handle.terminate(timeout=5.0)


# ----------------------------------------------------------------------
# Storms on batched frames (slow stage; check.sh replays this)
# ----------------------------------------------------------------------


@needs_shm
@pytest.mark.slow
class TestBatchedFrameStorms:
    def test_dropped_and_garbled_batch_frames_resolve_every_member(self):
        """A transport fault on a *batched* frame orphans all members at
        once; the seq-gap/heartbeat detectors must still complete every
        request bit-identical to fault-free."""
        specs = dot_specs(24)
        want = sequential_outputs(specs)
        plan = FaultPlan(
            faults=(
                ReplyDrop(at_job=2, worker=0),
                ReplyGarble(at_job=2, worker=1),
                ReplyDrop(at_job=5, worker=1),
            ),
        )
        results, report, stats, _ = run_gateway(
            specs, "shm", window_s=0.005, fault_plan=plan,
            resilience=ResilienceConfig(
                heartbeat_interval_s=0.02, hang_timeout_s=0.5,
                hedge=True, hedge_after_s=0.1,
            ),
            timeout=2.0, workers=2,
        )
        assert [
            r.output for r in sorted(results, key=lambda r: int(r.name[1:]))
        ] == want
        assert report.completed == len(specs)
        faults = report.transport_faults
        assert faults.get("dropped", 0) + faults.get("garbled", 0) > 0
        assert shm_residue() == []

    @pytest.mark.parametrize("seed", [7, 2024])
    def test_seeded_storm_on_batched_shm_frames_matches_fault_free(
        self, seed
    ):
        specs = dot_specs(20)
        want = sequential_outputs(specs, configs=(TINY, TINY, TINY))
        plan = FaultPlan.transport_storm(
            seed, workers=3, hangs=1, slows=1, drops=2, garbles=2,
            max_job=8, slow_delay_s=(0.02, 0.1),
        )
        results, report, _, _ = run_gateway(
            specs, "shm", window_s=0.005, fault_plan=plan,
            resilience=ResilienceConfig(
                heartbeat_interval_s=0.02, hang_timeout_s=0.4,
                hedge=True, hedge_after_s=0.05,
            ),
            timeout=2.0, workers=3,
        )
        assert [
            r.output for r in sorted(results, key=lambda r: int(r.name[1:]))
        ] == want
        assert report.completed == len(specs)
        assert shm_residue() == []
