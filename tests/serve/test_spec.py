"""JobSpec: the picklable wire format and its kernel registry."""

import pickle

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.engine.system import CAPEConfig, CAPESystem
from repro.serve import (
    KERNELS,
    JobSpec,
    ServeJob,
    kernel_names,
    register_kernel,
)

TINY = CAPEConfig(name="tiny", num_chains=64)


@pytest.fixture
def system():
    return CAPESystem(TINY)


class TestRegistry:
    def test_builtins_registered(self):
        names = kernel_names()
        for expected in ("vadd_sum", "dot", "saxpy_sum", "match_count", "program"):
            assert expected in names

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_kernel("vadd_sum")(lambda system, payload: None)

    def test_custom_kernel_round_trip(self, system):
        @register_kernel("test_spec_double")
        def _double(sys_, payload):
            return int(payload["x"]) * 2

        try:
            spec = JobSpec("d", "test_spec_double", {"x": 21})
            assert spec.to_job().execute(system).output == 42
        finally:
            del KERNELS["test_spec_double"]

    def test_unknown_kernel_names_the_registry(self):
        spec = JobSpec("bad", "no_such_kernel")
        with pytest.raises(ConfigError, match="no_such_kernel"):
            spec.resolve_kernel()


class TestBuiltinKernels:
    def test_vadd_sum(self, system):
        data = np.arange(16)
        spec = JobSpec("v", "vadd_sum", {"data": data}, lanes=16)
        assert spec.to_job().execute(system).output == int((2 * data).sum())

    def test_dot(self, system):
        x, y = np.arange(8), np.arange(8) + 3
        spec = JobSpec("d", "dot", {"x": x, "y": y}, lanes=8)
        assert spec.to_job().execute(system).output == int((x * y).sum())

    def test_saxpy_sum(self, system):
        x, y = np.arange(8), np.arange(8) * 5
        spec = JobSpec("s", "saxpy_sum", {"x": x, "y": y, "a": 3}, lanes=8)
        assert spec.to_job().execute(system).output == int((3 * x + y).sum())

    def test_match_count(self, system):
        data = np.array([7, 1, 7, 2, 7, 3])
        spec = JobSpec("m", "match_count", {"data": data, "needle": 7}, lanes=8)
        assert spec.to_job().execute(system).output == 3

    def test_program(self, system):
        spec = JobSpec(
            "p",
            "program",
            {
                "source": """
                    li a0, 4
                    li a1, 0x1000
                    vsetvli t0, a0, e32
                    vle32.v v1, (a1)
                    ecall
                """,
                "memory_words": {0x1000: [1, 2, 3, 4]},
                "result_regs": [10],
            },
            lanes=4,
        )
        assert spec.to_job().execute(system).output == (4,)


class TestSpec:
    def test_pickle_round_trip(self):
        spec = JobSpec(
            "r", "dot", {"x": np.arange(4), "y": np.arange(4)},
            lanes=4, priority=2, tenant="acme", golden=14,
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.name == "r" and clone.tenant == "acme"
        np.testing.assert_array_equal(clone.payload["x"], spec.payload["x"])

    def test_footprint_mirrors_spec(self):
        spec = JobSpec("f", "dot", lanes=128, vregs=4, resident=False)
        footprint = spec.footprint
        assert (footprint.lanes, footprint.vregs, footprint.resident) == (
            128, 4, False,
        )

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError):
            JobSpec("", "dot")

    def test_with_tenant_rebinds_only_tenant(self):
        spec = JobSpec("t", "dot", lanes=8)
        other = spec.with_tenant("acme")
        assert other.tenant == "acme" and other.lanes == 8
        assert spec.tenant == "default"

    def test_to_job_is_serve_job_with_golden(self, system):
        spec = JobSpec(
            "g", "match_count", {"data": np.zeros(4), "needle": 0},
            lanes=4, golden=4,
        )
        job = spec.to_job()
        assert isinstance(job, ServeJob) and job.spec is spec
        result = job.execute(system)
        assert result.validated is True

    def test_golden_mismatch_flags_result(self, system):
        spec = JobSpec(
            "bad-golden", "match_count",
            {"data": np.zeros(4), "needle": 0}, lanes=4, golden=999,
        )
        result = spec.to_job().execute(system)
        assert result.validated is False
