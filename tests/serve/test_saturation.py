"""Saturation: a 10x-capacity burst must shed load, not buffer it."""

import asyncio

import numpy as np
import pytest

from repro.common.errors import AdmissionError
from repro.engine.system import CAPEConfig
from repro.serve import Gateway, JobSpec, ServeConfig

TINY = CAPEConfig(name="tiny", num_chains=64)


@pytest.mark.slow
def test_burst_beyond_capacity_is_shed_and_recovers():
    """Fire a burst 10x the queue bound at a one-device gateway: the
    overflow must be rejected synchronously with retry hints (bounded
    memory), every admitted request must complete correctly, and the
    gateway must accept traffic again once the burst drains."""
    max_queue = 8
    burst = 10 * max_queue

    async def main():
        cfg = ServeConfig(configs=(TINY,), workers=1, max_queue=max_queue)
        async with Gateway(cfg) as gw:
            admitted, rejections = [], []
            for i in range(burst):
                spec = JobSpec(
                    f"b{i}", "dot",
                    {"x": np.arange(8) + i, "y": np.arange(8)}, lanes=8,
                )
                try:
                    admitted.append((i, gw.submit_nowait(spec)))
                except AdmissionError as exc:
                    rejections.append(exc)
            results = await asyncio.gather(*(f for _, f in admitted))

            # The gateway recovered: post-burst traffic is admitted.
            late = await gw.submit(
                JobSpec("late", "dot", {"x": np.arange(8), "y": np.arange(8)}, lanes=8)
            )
            return admitted, rejections, results, late, gw.report()

    admitted, rejections, results, late, report = asyncio.run(main())

    # Backpressure engaged: the queue bound held, the rest was shed.
    assert len(admitted) == max_queue
    assert len(rejections) == burst - max_queue
    assert all(r.reason == "queue_full" for r in rejections)
    assert all(
        r.retry_after_s is not None and r.retry_after_s > 0
        for r in rejections
    )
    assert report.rejected_queue_full == burst - max_queue

    # Everything admitted was served correctly under saturation.
    for (i, _), result in zip(admitted, results):
        assert result.output == int(((np.arange(8) + i) * np.arange(8)).sum())
    assert late.ok
    assert report.completed == max_queue + 1
