"""ASCII table formatting."""

from repro.eval.tables import format_table


def test_alignment_and_separator():
    text = format_table(["name", "value"], [["a", 1], ["long-name", 2.5]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", " "}
    assert "long-name" in lines[3]
    assert "2.50" in lines[3]


def test_floats_rendered_with_two_decimals():
    text = format_table(["x"], [[3.14159]])
    assert "3.14" in text


def test_empty_rows():
    text = format_table(["a", "b"], [])
    assert len(text.splitlines()) == 2
