"""Roofline model: roofs, ridge point, workload placement."""

import pytest

from repro.engine.system import CAPE131K, CAPE32K, CAPEConfig
from repro.eval.roofline import Roofline
from repro.workloads.micro import VVAdd, Dotprod

SMALL = CAPEConfig(name="t", num_chains=128)


def test_compute_roof_scales_with_capacity():
    r32 = Roofline(CAPE32K)
    r131 = Roofline(CAPE131K)
    assert r131.compute_roof_ops_per_s == pytest.approx(
        4 * r32.compute_roof_ops_per_s
    )


def test_memory_roof_linear_in_intensity():
    r = Roofline(CAPE32K)
    assert r.memory_roof_ops_per_s(2.0) == pytest.approx(
        2 * r.memory_roof_ops_per_s(1.0)
    )


def test_attainable_is_min_of_roofs():
    r = Roofline(CAPE32K)
    ridge = r.ridge_intensity()
    assert r.attainable(ridge / 10) < r.compute_roof_ops_per_s
    assert r.attainable(ridge * 10) == r.compute_roof_ops_per_s


def test_ridge_moves_right_with_more_compute():
    assert Roofline(CAPE131K).ridge_intensity() > Roofline(CAPE32K).ridge_intensity()


def test_measure_places_point_under_roof():
    r = Roofline(SMALL)
    point = r.measure(VVAdd, n=4096)
    assert point.throughput_ops_per_s > 0
    assert point.intensity_ops_per_byte > 0
    assert point.throughput_ops_per_s <= r.attainable(point.intensity_ops_per_byte) * 1.5


def test_streaming_add_is_memory_bound_at_scale():
    point = Roofline(CAPE32K).measure(VVAdd, n=1 << 17)
    assert point.bound == "memory"
