"""Speedup harness and SIMD comparison plumbing."""

import pytest

from repro.eval.harness import SpeedupRow, compare_simd, run_workload
from repro.workloads.micro import VVAdd


def test_speedup_row_ratios():
    row = SpeedupRow(
        name="x", intensity="constant",
        cape32k_s=1.0, cape131k_s=0.5,
        core1_s=10.0, core2_s=6.0, core3_s=4.5,
    )
    assert row.speedup_32k == pytest.approx(10.0)
    assert row.speedup_131k == pytest.approx(12.0)
    assert row.speedup_131k_vs_3core == pytest.approx(9.0)


def test_run_workload_produces_all_systems():
    row = run_workload(VVAdd, n=4096)
    assert row.name == "vvadd"
    for value in (row.cape32k_s, row.cape131k_s, row.core1_s, row.core2_s, row.core3_s):
        assert value > 0
    assert row.speedup_32k > 1  # CAPE wins on streaming adds


def test_compare_simd_orders_widths():
    row = compare_simd(VVAdd, n=8192)
    assert row.scalar_s >= row.sve128_s >= row.sve256_s >= row.sve512_s
    assert row.speedup(512) >= row.speedup(128)
    assert row.cape_vs_sve512 > 0
