"""The report CLI (quick mode)."""

import io
import sys

import pytest

from repro.eval import report


def test_quick_report_renders(capsys):
    assert report.main(["--quick"]) == 0
    text = capsys.readouterr().out
    assert "Table II" in text
    assert "Table I" in text
    assert "2.7" in text  # derated clock
    assert "vadd.vv" in text
    assert "CAPE32k" in text


def test_report_sections_compose():
    out = io.StringIO()
    report.report_table_ii(out)
    report.report_area(out)
    text = out.getvalue()
    assert "critical path 237 ps" in text
    assert "CAPE131k" in text


def test_json_export_quick(tmp_path):
    import json

    paths = report.export_json(str(tmp_path), quick=True)
    assert len(paths) == 2
    table1 = json.loads((tmp_path / "table1_instructions.json").read_text())
    by_inst = {row["inst"]: row for row in table1}
    assert by_inst["vadd.vv"]["measured_cycles"] == 258
    table2 = json.loads((tmp_path / "table2_microops.json").read_text())
    assert table2["read"]["delay_ps"] == 237.0


def test_instruction_mix_recorded():
    from repro.engine.system import CAPEConfig, CAPESystem

    cape = CAPESystem(CAPEConfig(name="t", num_chains=8))
    cape.vsetvl(64)
    cape.vadd(3, 1, 2)
    cape.vadd(3, 1, 2)
    cape.vmul(4, 1, 2)
    mix = cape.vcu.stats.mix
    assert mix["vadd.vv"] == 2
    assert mix["vmul.vv"] == 1
