"""Differential tests: whole-kernel superplan replay vs per-instruction.

With ``superplan`` enabled, a :meth:`CAPESystem.superplan_scope` defers
every eligible mirror dispatch and replays the whole kernel as one fused
:class:`~repro.plan.Superplan`. The contract is total equivalence: every
observable — destination values, the full register file, cycle and
energy totals, and every ``csb.microops`` series — must be bit-identical
to the per-instruction path, on both execution backends, across masked
forms (including the masked-vmul re-sync fallback that forces a
mid-scope flush), non-deferrable ops (reductions, popcounts), partial
``vl``/``vstart`` windows, and runs with an active fault plan (where
superplans go inactive and the PR-4 divergence ladder is preserved).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.system import CAPEConfig, CAPESystem
from repro.faults import FaultInjector, FaultPlan, StuckBit, TagFlip
from repro.obs import Observer
from repro.plan import PlanCache

NANO = CAPEConfig(name="nano-sp", num_chains=8)  # 256 lanes

#: (system method, supports mask kwarg). Masked vmul exists in the table
#: but falls back to a re-sync (non-deferrable) — kept deliberately so
#: the differential covers a mid-scope flush.
OPS = (
    ("vadd", True),
    ("vsub", True),
    ("vmul", True),
    ("vand", True),
    ("vor", True),
    ("vxor", True),
    ("vmin", False),
    ("vmax", False),
)


def run_program(
    backend, superplan, a, b, mask, ops,
    injector=None, vstart=0,
):
    """Run an op sequence inside one superplan scope; snapshot every
    observable plus the cache's counter snapshot."""
    obs = Observer()
    cache = PlanCache()
    system = CAPESystem(
        NANO, backend=backend, observer=obs, plan_cache=cache,
        superplan=superplan, fault_injector=injector,
    )
    n = len(a)
    system.vsetvl(n)
    system.vregs[1, :n] = a
    system.vregs[2, :n] = b
    system.vregs[6, :n] = mask
    system._written_vregs.update({1, 2, 6})
    if system._bitengine is not None:
        for reg in (1, 2, 6):
            system._bitengine.sync_register(reg, system.vregs[reg])
    if vstart:
        system.set_vstart(vstart)
    with system.superplan_scope():
        for i, (op, use_mask) in enumerate(ops):
            _, maskable = next(entry for entry in OPS if entry[0] == op)
            kwargs = {"mask": 6} if (use_mask and maskable) else {}
            getattr(system, op)(3 + (i % 3), 1, 2, **kwargs)
        system.vmerge(5, 1, 2, vm=6)
        system.vmseq(7, 1, 2)
        total = int(system.vredsum(3, signed=False))
        hits = system.vmask_popcount(7)
    state = {
        "total": total,
        "hits": hits,
        "registers": [system.read_vreg(r).tolist() for r in range(8)],
        "cycles": system.stats.cycles,
        "energy": system.stats.energy_j,
        "microops": {
            key: value
            for key, value in obs.metrics.snapshot().items()
            if key[0] == "csb.microops"
        },
    }
    return state, cache.snapshot()


@settings(max_examples=10, deadline=None)
@given(
    st.lists(st.integers(0, 2**32 - 1), min_size=4, max_size=32),
    st.lists(st.integers(0, 2**32 - 1), min_size=4, max_size=32),
    st.lists(st.tuples(st.sampled_from([op for op, _ in OPS]), st.booleans()),
             min_size=1, max_size=6),
    st.sampled_from(["reference", "bitplane"]),
)
def test_superplan_replay_is_bit_identical(a, b, ops, backend):
    n = min(len(a), len(b))
    a, b = a[:n], b[:n]
    mask = [(x ^ y) & 1 for x, y in zip(a, b)]
    fused, _ = run_program(backend, True, a, b, mask, ops)
    single, _ = run_program(backend, False, a, b, mask, ops)
    assert fused == single


def test_superplan_actually_fuses_on_the_bitplane_backend():
    """The equality above must not be vacuous: on the plain bit-plane
    backend the scope really builds fused superplans (reference stays
    per-instruction — its engine type is not eligible)."""
    a = list(range(16))
    b = list(range(16, 0, -1))
    mask = [i & 1 for i in range(16)]
    ops = [("vadd", False), ("vxor", True), ("vmin", False)]
    _, fused_snap = run_program("bitplane", True, a, b, mask, ops)
    assert fused_snap["superplans"] >= 1
    _, ref_snap = run_program("reference", True, a, b, mask, ops)
    assert ref_snap["superplans"] == 0


@pytest.mark.parametrize("vstart,vl", [(0, 11), (3, 13), (5, 16)])
def test_superplan_respects_partial_windows(vstart, vl):
    """Elements outside ``[vstart, vl)`` are untouched by the fused
    replay, exactly as per-instruction."""
    rng = np.random.default_rng(0x5A)
    a = rng.integers(0, 1 << 16, vl).tolist()
    b = rng.integers(0, 1 << 16, vl).tolist()
    mask = rng.integers(0, 2, vl).tolist()
    ops = [("vadd", True), ("vmul", False), ("vmax", False)]
    fused, snap = run_program(
        "bitplane", True, a, b, mask, ops, vstart=vstart
    )
    single, _ = run_program(
        "bitplane", False, a, b, mask, ops, vstart=vstart
    )
    assert fused == single
    assert snap["superplans"] >= 1


def test_masked_vmul_fallback_flushes_mid_scope():
    """Masked vmul has no microcode: it re-syncs the mirror, which must
    flush the open superplan segment first — and stay bit-identical."""
    rng = np.random.default_rng(0x71)
    a = rng.integers(0, 1 << 16, 16).tolist()
    b = rng.integers(0, 1 << 16, 16).tolist()
    mask = rng.integers(0, 2, 16).tolist()
    ops = [("vadd", True), ("vmul", True), ("vxor", False), ("vsub", True)]
    fused, snap = run_program("bitplane", True, a, b, mask, ops)
    single, _ = run_program("bitplane", False, a, b, mask, ops)
    assert fused == single
    # The fallback split the scope but deferrable ops still fused.
    assert snap["superplans"] >= 1


@pytest.mark.parametrize("backend", ["reference", "bitplane"])
def test_superplan_inactive_under_active_faults(backend):
    """A fault injector makes every dispatch ineligible: the scope
    stays live per-instruction, the divergence ladder applies, and the
    outcome matches the superplan-off run exactly."""
    rng = np.random.default_rng(0xCA9E)
    a = rng.integers(0, 1 << 16, 16).tolist()
    b = rng.integers(0, 1 << 16, 16).tolist()
    mask = rng.integers(0, 2, 16).tolist()
    ops = [("vadd", True), ("vmul", False), ("vxor", True), ("vmin", False)]

    def faulty():
        return FaultInjector(FaultPlan([
            StuckBit(row=3, element=2, bit=1, value=1),
            TagFlip(element=0, bit=0, at_search=3),
        ]))

    fused, snap = run_program(
        backend, True, a, b, mask, ops, injector=faulty()
    )
    single, _ = run_program(
        backend, False, a, b, mask, ops, injector=faulty()
    )
    assert fused == single
    assert snap["superplans"] == 0


def test_second_identical_kernel_replays_from_the_warm_cache():
    """Same system, same kernel twice: the second scope compiles
    nothing new and the results repeat exactly."""
    obs = Observer()
    cache = PlanCache()
    system = CAPESystem(
        NANO, backend="bitplane", observer=obs, plan_cache=cache,
        superplan=True,
    )
    n = 16
    outs = []
    for _round in range(2):
        system.reset()
        system.vsetvl(n)
        system.vregs[1, :n] = np.arange(n)
        system.vregs[2, :n] = np.arange(n)[::-1].copy()
        system._written_vregs.update({1, 2})
        for reg in (1, 2):
            system._bitengine.sync_register(reg, system.vregs[reg])
        with system.superplan_scope():
            system.vadd(3, 1, 2)
            system.vmul(4, 1, 2)
            system.vxor(5, 3, 4)
        outs.append([system.read_vreg(r).tolist() for r in (3, 4, 5)])
    assert outs[0] == outs[1]
    snap = cache.snapshot()
    compiles_after_two = snap["compiles"]
    assert snap["superplans"] >= 1
    # Third round: pure cache hits, zero new compiles.
    system.reset()
    system.vsetvl(n)
    system.vregs[1, :n] = np.arange(n)
    system.vregs[2, :n] = np.arange(n)[::-1].copy()
    system._written_vregs.update({1, 2})
    for reg in (1, 2):
        system._bitengine.sync_register(reg, system.vregs[reg])
    with system.superplan_scope():
        system.vadd(3, 1, 2)
        system.vmul(4, 1, 2)
        system.vxor(5, 3, 4)
    assert cache.snapshot()["compiles"] == compiles_after_two
