"""Differential tests: compiled plans vs the per-dispatch FSM walk.

``repro.plan`` replaces repeated microcode FSM walks with a recorded
plan replay. The contract is total equivalence: with the plan cache on,
every observable — destination values, the full register file, cycle
and energy totals, and every ``csb.microops`` series — must be
bit-identical to the cache-off walk, on both execution backends,
including masked forms, truth-table execution, and runs with an active
fault plan (faulty backends take the generic replay path, so the
divergence ladder is preserved).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.csb.chain import Chain, MetaRow
from repro.engine.system import CAPEConfig, CAPESystem
from repro.engine.vcu import TRUTH_TABLES, TTDecoder, execute_table
from repro.faults import FaultInjector, FaultPlan, StuckBit, TagFlip
from repro.obs import Observer
from repro.plan import (
    GLOBAL_PLAN_CACHE,
    PlanCache,
    resolve_plan_cache,
)

NANO = CAPEConfig(name="nano", num_chains=8)  # 256 lanes

#: (system method, supports mask kwarg) — ops whose masked microcode
#: exists; masked vmul/vrsub fall back to re-sync and are covered by
#: the unmasked entries.
OPS = (
    ("vadd", True),
    ("vsub", True),
    ("vmul", False),
    ("vand", True),
    ("vor", True),
    ("vxor", True),
    ("vmin", False),
    ("vmax", False),
)


def run_program(backend, plan_cache, a, b, mask, ops, injector=None):
    """Run an op sequence; snapshot every observable."""
    obs = Observer()
    system = CAPESystem(
        NANO, backend=backend, observer=obs, plan_cache=plan_cache,
        fault_injector=injector,
    )
    n = len(a)
    system.vsetvl(n)
    system.vregs[1, :n] = a
    system.vregs[2, :n] = b
    system.vregs[6, :n] = mask
    system._written_vregs.update({1, 2, 6})
    if system._bitengine is not None:
        for reg in (1, 2, 6):
            system._bitengine.sync_register(reg, system.vregs[reg])
    for i, (op, use_mask) in enumerate(ops):
        _, maskable = next(entry for entry in OPS if entry[0] == op)
        kwargs = {"mask": 6} if (use_mask and maskable) else {}
        getattr(system, op)(3 + (i % 3), 1, 2, **kwargs)
    system.vmerge(5, 1, 2, vm=6)
    system.vmseq(7, 1, 2)
    total = int(system.vredsum(3, signed=False))
    return {
        "total": total,
        "registers": [system.read_vreg(r).tolist() for r in range(8)],
        "cycles": system.stats.cycles,
        "energy": system.stats.energy_j,
        "microops": {
            key: value
            for key, value in obs.metrics.snapshot().items()
            if key[0] == "csb.microops"
        },
    }


@settings(max_examples=10, deadline=None)
@given(
    st.lists(st.integers(0, 2**32 - 1), min_size=4, max_size=32),
    st.lists(st.integers(0, 2**32 - 1), min_size=4, max_size=32),
    st.lists(st.tuples(st.sampled_from([op for op, _ in OPS]), st.booleans()),
             min_size=1, max_size=5),
    st.sampled_from(["reference", "bitplane"]),
)
def test_plan_replay_is_bit_identical_to_fsm_walk(a, b, ops, backend):
    n = min(len(a), len(b))
    a, b = a[:n], b[:n]
    mask = [(x ^ y) & 1 for x, y in zip(a, b)]
    planned = run_program(backend, True, a, b, mask, ops)
    walked = run_program(backend, False, a, b, mask, ops)
    assert planned == walked


@pytest.mark.parametrize("backend", ["reference", "bitplane"])
def test_plan_replay_identical_under_active_faults(backend):
    """Faulty backends take the generic replay path: the injected
    divergence (stuck bits, tag flips) lands identically whether the
    microcode comes from a plan or a live FSM walk."""
    rng = np.random.default_rng(0xCA9E)
    a = rng.integers(0, 1 << 16, 16).tolist()
    b = rng.integers(0, 1 << 16, 16).tolist()
    mask = (rng.integers(0, 2, 16)).tolist()
    ops = [("vadd", True), ("vmul", False), ("vxor", True), ("vmin", False)]

    def faulty():
        return FaultInjector(FaultPlan([
            StuckBit(row=3, element=2, bit=1, value=1),
            TagFlip(element=0, bit=0, at_search=3),
        ]))

    planned = run_program(backend, True, a, b, mask, ops, injector=faulty())
    walked = run_program(backend, False, a, b, mask, ops, injector=faulty())
    assert planned == walked


# ---------------------------------------------------------------------
# Truth-table (execute_table) plans
# ---------------------------------------------------------------------

VD, VS1, VS2 = 3, 1, 2
CARRY = int(MetaRow.CARRY)


def _table_chain(rng, width=8, cols=16):
    chain = Chain(num_subarrays=width, num_cols=cols)
    chain.poke_register(VS1, rng.integers(0, 1 << width, size=cols))
    chain.poke_register(VS2, rng.integers(0, 1 << width, size=cols))
    return chain


@pytest.mark.parametrize("name,preamble,msb_first", [
    ("vadd.vv", ((VD, 0), (CARRY, 0)), False),
    ("vredsum.vs", (), True),
])
def test_execute_table_plan_matches_walk(rng, name, preamble, msb_first):
    decoder = TTDecoder(vd=VD, vs1=VS1, vs2=VS2)
    cache = PlanCache()
    results = {}
    for mode in ("walk", "plan", "plan-again"):
        chain = _table_chain(np.random.default_rng(17))
        before = chain.stats.counts.copy()
        out = execute_table(
            chain, TRUTH_TABLES[name], decoder, width=8,
            msb_first=msb_first, preamble=preamble,
            plan_cache=False if mode == "walk" else cache,
        )
        results[mode] = (
            out,
            chain.peek_register(VD).tolist(),
            {k: v - before.get(k, 0) for k, v in chain.stats.counts.items()},
        )
    assert results["walk"] == results["plan"] == results["plan-again"]
    assert cache.hits == 1 and cache.misses == 1


# ---------------------------------------------------------------------
# PlanCache unit behaviour
# ---------------------------------------------------------------------


def test_plan_cache_lru_eviction():
    cache = PlanCache(capacity=2)
    built = []

    def builder(tag):
        def build():
            built.append(tag)
            return tag
        return build

    assert cache.get_or_compile("a", builder("A")) == "A"
    assert cache.get_or_compile("b", builder("B")) == "B"
    assert cache.get_or_compile("a", builder("A2")) == "A"  # hit; refreshes a
    assert cache.get_or_compile("c", builder("C")) == "C"  # evicts b
    assert "b" not in cache and "a" in cache and "c" in cache
    assert len(cache) == 2
    assert cache.get_or_compile("b", builder("B2")) == "B2"  # rebuilt
    assert built == ["A", "B", "C", "B2"]
    assert cache.hits == 1 and cache.misses == 4


def test_plan_cache_publishes_hit_miss_metrics():
    cache = PlanCache()
    obs = Observer()
    cache.get_or_compile("k", lambda: "v", observer=obs)
    cache.get_or_compile("k", lambda: "v", observer=obs)
    assert obs.metrics.total("plan.cache.miss") == 1
    assert obs.metrics.total("plan.cache.hit") == 1
    series = obs.metrics.series("plan.cache.compile_ns")
    assert series and series[0][1].count == 1


def test_plans_shared_across_device_widths():
    """The plan key excludes the column count: devices with different
    chain counts (hence different fused widths) share compiled plans."""
    cache = PlanCache()

    def drive(num_chains):
        system = CAPESystem(
            CAPEConfig(name=f"w{num_chains}", num_chains=num_chains),
            backend="bitplane", plan_cache=cache,
        )
        n = system.config.max_vl
        system.vsetvl(n)
        system.vregs[1, :n] = np.arange(n) % 251
        system.vregs[2, :n] = np.arange(n) % 97
        system._written_vregs.update({1, 2})
        system._bitengine.sync_register(1, system.vregs[1])
        system._bitengine.sync_register(2, system.vregs[2])
        system.vadd(3, 1, 2)
        return system.read_vreg(3)

    small = drive(2)
    misses_after_first = cache.misses
    large = drive(8)
    assert cache.misses == misses_after_first  # second device: all hits
    assert cache.hits >= 1
    assert np.array_equal(small, large[: len(small)])


def test_resolve_plan_cache():
    assert resolve_plan_cache(True) is GLOBAL_PLAN_CACHE
    assert resolve_plan_cache(False) is None
    assert resolve_plan_cache(None) is None
    private = PlanCache()
    assert resolve_plan_cache(private) is private
    with pytest.raises(ConfigError):
        resolve_plan_cache("bogus")
