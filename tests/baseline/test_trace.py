"""Trace blocks: op accounting and parallel sharding."""

import numpy as np
import pytest

from repro.baseline.trace import Trace, TraceBlock
from repro.common.errors import ConfigError


def test_total_ops_counts_everything():
    block = TraceBlock(
        "b", int_ops=10, mul_ops=2, fp_ops=3, branches=4,
        loads=np.arange(5), stores=np.arange(6),
    )
    assert block.total_ops == 10 + 2 + 3 + 4 + 5 + 6


def test_split_deals_contiguous_chunks():
    """Phoenix-style chunking: each core owns a disjoint address slice."""
    block = TraceBlock("b", int_ops=8, loads=np.arange(8) * 4)
    shards = block.split(2)
    assert len(shards) == 2
    assert shards[0].loads.tolist() == [0, 4, 8, 12]
    assert shards[1].loads.tolist() == [16, 20, 24, 28]
    assert shards[0].int_ops == 4


def test_serial_block_does_not_split():
    block = TraceBlock("b", int_ops=8, parallel=False)
    assert block.split(4) == [block]


def test_split_one_is_identity():
    block = TraceBlock("b", int_ops=8)
    assert block.split(1) == [block]


def test_invalid_miss_rate_rejected():
    with pytest.raises(ConfigError):
        TraceBlock("b", branch_miss_rate=1.5)


def test_trace_aggregates():
    trace = Trace("t")
    trace.add(TraceBlock("a", int_ops=5, loads=np.arange(3)))
    trace.add(TraceBlock("b", int_ops=5, stores=np.arange(2)))
    assert trace.total_ops == 15
    assert trace.total_memory_bytes == 4 * 5


def test_repeat_defaults_to_one():
    assert Trace("t").repeat == 1
