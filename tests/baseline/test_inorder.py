"""In-order core model (CAPE's control processor)."""

import numpy as np
import pytest

from repro.baseline.inorder import (
    InOrderConfig,
    InOrderCore,
    control_processor_hierarchy,
)
from repro.baseline.ooo import OoOCore
from repro.baseline.trace import Trace, TraceBlock


def test_dual_issue_bound():
    core = InOrderCore()
    block = TraceBlock("alu", int_ops=1000)
    # 2-wide issue is the ceiling even with 4 int units.
    assert core.block_cycles(block) >= 1000 / 2


def test_memory_stalls_add_not_hide():
    core = InOrderCore()
    loads = 512 * np.arange(64, dtype=np.int64) * 4
    with_mem = TraceBlock("m", int_ops=1000, loads=loads)
    without = TraceBlock("c", int_ops=1000)
    assert core.block_cycles(with_mem) > core.block_cycles(without) + 100


def test_in_order_slower_than_ooo_on_memory():
    loads = 512 * np.arange(256, dtype=np.int64) * 4
    t1 = Trace("t", [TraceBlock("m", loads=loads.copy())])
    t2 = Trace("t", [TraceBlock("m", loads=loads.copy())])
    inorder = InOrderCore().run(t1)
    ooo = OoOCore().run(t2)
    assert inorder.cycles > ooo.cycles


def test_cp_hierarchy_has_no_l3_and_512b_l2_lines():
    h = control_processor_hierarchy()
    assert h.l3 is None
    assert h.l2.line_bytes == 512
    assert h.config.frequency_hz == pytest.approx(2.7e9)


def test_cp_config_matches_table_iii():
    config = InOrderConfig()
    assert config.issue_width == 2
    assert config.lsq_entries == 5
    assert config.frequency_hz == pytest.approx(2.7e9)
