"""SVE-like SIMD model (Figure 12 machinery)."""

import numpy as np
import pytest

from repro.baseline.simd import SIMDConfig, SIMDCore
from repro.baseline.ooo import OoOCore
from repro.common.errors import ConfigError
from repro.workloads.micro import VVAdd


def test_lane_math():
    assert SIMDConfig(vector_bits=128).lanes == 4
    assert SIMDConfig(vector_bits=256).lanes == 8
    assert SIMDConfig(vector_bits=512).lanes == 16


def test_misaligned_width_rejected():
    with pytest.raises(ConfigError):
        SIMDConfig(vector_bits=100)


def test_wider_vectors_run_faster():
    wl = VVAdd(n=1 << 14)
    times = {}
    for bits in (128, 256, 512):
        core = SIMDCore(SIMDConfig(vector_bits=bits))
        times[bits] = core.run(wl.simd_trace(core.lanes)).seconds
    assert times[128] > times[256] > times[512]


def test_simd_beats_scalar():
    wl = VVAdd(n=1 << 14)
    scalar = OoOCore().run(wl.scalar_trace()).seconds
    core = SIMDCore(SIMDConfig(vector_bits=512))
    simd = core.run(wl.simd_trace(core.lanes)).seconds
    assert scalar / simd > 1.5


def test_simd_speedup_sublinear_in_lanes():
    """Memory-bound streaming: 4x lanes does not give 4x speedup."""
    wl = VVAdd(n=1 << 15)
    core128 = SIMDCore(SIMDConfig(vector_bits=128))
    core512 = SIMDCore(SIMDConfig(vector_bits=512))
    t128 = core128.run(wl.simd_trace(core128.lanes)).seconds
    t512 = core512.run(wl.simd_trace(core512.lanes)).seconds
    assert t128 / t512 < 4.0
