"""Out-of-order interval model: which bound dominates when."""

import numpy as np
import pytest

from repro.baseline.ooo import OoOConfig, OoOCore
from repro.baseline.trace import Trace, TraceBlock


def test_issue_bound_for_pure_alu_mix():
    """With ops spread across classes, the 8-wide front end is the limit."""
    core = OoOCore()
    block = TraceBlock("alu", int_ops=4000, mul_ops=2000, fp_ops=2000)
    cycles = core.block_cycles(block)
    assert cycles >= 8000 / 8


def test_int_unit_bound_when_alu_heavy():
    core = OoOCore()
    block = TraceBlock("int", int_ops=8000)
    # 4 int units < 8-wide issue: unit bound dominates.
    assert core.block_cycles(block) == pytest.approx(8000 / 4)


def test_mul_latency_weighs_on_unit_bound():
    core = OoOCore()
    block = TraceBlock("mul", mul_ops=4000)
    assert core.block_cycles(block) == pytest.approx(4000 * 3 / 4)


def test_branch_mispredictions_add_penalty():
    core = OoOCore()
    clean = TraceBlock("clean", int_ops=100, branches=1000, branch_miss_rate=0.0)
    dirty = TraceBlock("dirty", int_ops=100, branches=1000, branch_miss_rate=0.1)
    delta = core.block_cycles(dirty) - core.block_cycles(clean)
    assert delta == pytest.approx(1000 * 0.1 * core.config.branch_penalty)


def test_memory_bound_streaming_misses():
    core = OoOCore()
    # 1,000 distinct lines: all cold misses to HBM.
    loads = 64 * np.arange(1000, dtype=np.int64) * 8
    block = TraceBlock("stream", loads=loads)
    cycles = core.block_cycles(block)
    assert cycles > 1000  # far above the 1000/3 mem-unit bound


def test_l1_hits_are_hidden():
    core = OoOCore()
    warm = 64 * np.arange(8, dtype=np.int64)
    core.block_cycles(TraceBlock("warm", loads=warm))
    cycles = core.block_cycles(TraceBlock("hits", loads=np.tile(warm, 100)))
    # 800 L1 hits bound by the 3 memory units, not by latency.
    assert cycles == pytest.approx(800 / 3, rel=0.2)


def test_dependent_loads_serialise():
    core = OoOCore()
    loads = 64 * np.arange(100, dtype=np.int64) * 8
    parallel = TraceBlock("mlp", loads=loads.copy())
    serial = TraceBlock("chase", loads=loads.copy(), dependent_loads=100)
    core2 = OoOCore()
    assert core2.block_cycles(serial) > core.block_cycles(parallel) * 3


def test_run_aggregates_blocks_and_repeat():
    core = OoOCore()
    trace = Trace("t", [TraceBlock("a", int_ops=800)], repeat=3)
    result = core.run(trace)
    assert result.cycles == pytest.approx(3 * core.block_cycles(TraceBlock("a", int_ops=800)))
    assert result.instructions == 3 * 800
    assert result.seconds == pytest.approx(result.cycles / 3.6e9)


def test_table_iii_core_defaults():
    config = OoOConfig()
    assert config.issue_width == 8
    assert config.rob_entries == 224
    assert config.load_queue == 72
    assert config.store_queue == 56
    assert config.frequency_hz == pytest.approx(3.6e9)


def test_ipc_bounded_by_issue_width():
    core = OoOCore()
    trace = Trace("t", [TraceBlock("a", int_ops=1000, mul_ops=500, fp_ops=500, branches=250)])
    result = core.run(trace)
    assert result.ipc <= core.config.issue_width
