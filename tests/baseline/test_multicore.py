"""Multicore baseline: parallel scaling and serial bottlenecks."""

import numpy as np
import pytest

from repro.baseline.multicore import Multicore
from repro.baseline.ooo import OoOCore
from repro.baseline.trace import Trace, TraceBlock
from repro.common.errors import ConfigError


def _parallel_trace(n=1 << 15):
    loads = 4 * np.arange(n, dtype=np.int64)
    return Trace("p", [TraceBlock("work", int_ops=4 * n, loads=loads)])


def test_two_cores_faster_than_one():
    single = OoOCore().run(_parallel_trace())
    dual = Multicore(2).run(_parallel_trace())
    assert 1.3 < single.seconds / dual.seconds <= 2.2


def test_three_cores_faster_than_two():
    dual = Multicore(2).run(_parallel_trace())
    triple = Multicore(3).run(_parallel_trace())
    assert triple.seconds < dual.seconds


def test_serial_blocks_do_not_scale():
    trace = Trace("s", [TraceBlock("serial", int_ops=1 << 18, parallel=False)])
    single = OoOCore().run(Trace("s", [TraceBlock("serial", int_ops=1 << 18, parallel=False)]))
    quad = Multicore(4).run(trace)
    assert quad.cycles == pytest.approx(single.cycles, rel=0.01)


def test_amdahl_with_mixed_trace():
    blocks = [
        TraceBlock("par", int_ops=1 << 18),
        TraceBlock("ser", int_ops=1 << 18, parallel=False),
    ]
    single = OoOCore()
    t_single = sum(single.block_cycles(b) for b in blocks)
    t_multi = Multicore(4).run(Trace("m", blocks)).cycles
    speedup = t_single / t_multi
    assert 1.2 < speedup < 2.2  # serial half caps the gain near 2x


def test_shared_l3_is_shared():
    mc = Multicore(2)
    assert mc.hierarchies[0].l3 is mc.hierarchies[1].l3


def test_invalid_core_count():
    with pytest.raises(ConfigError):
        Multicore(0)
