"""Timing-model sanity: more resources never make a core slower.

Monotonicity properties that any defensible interval model must satisfy;
violations would indicate accounting bugs rather than interesting
microarchitecture.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baseline.inorder import InOrderConfig, InOrderCore
from repro.baseline.ooo import OoOConfig, OoOCore
from repro.baseline.trace import Trace, TraceBlock


def mixed_trace(n=4096, seed=0):
    rng = np.random.default_rng(seed)
    return Trace("t", [
        TraceBlock(
            "b",
            int_ops=2 * n,
            mul_ops=n // 4,
            branches=n // 8,
            branch_miss_rate=0.02,
            loads=4 * rng.integers(0, 1 << 16, size=n),
            stores=4 * rng.integers(0, 1 << 16, size=n // 4),
        )
    ])


@settings(max_examples=10, deadline=None)
@given(st.integers(1, 8), st.integers(1, 8))
def test_wider_issue_never_slower(w1, w2):
    lo, hi = sorted((w1, w2))
    slow = OoOCore(OoOConfig(issue_width=lo)).run(mixed_trace())
    fast = OoOCore(OoOConfig(issue_width=hi)).run(mixed_trace())
    assert fast.cycles <= slow.cycles + 1e-9


@settings(max_examples=10, deadline=None)
@given(st.integers(1, 8), st.integers(1, 8))
def test_more_int_units_never_slower(u1, u2):
    lo, hi = sorted((u1, u2))
    slow = OoOCore(OoOConfig(int_units=lo)).run(mixed_trace())
    fast = OoOCore(OoOConfig(int_units=hi)).run(mixed_trace())
    assert fast.cycles <= slow.cycles + 1e-9


@settings(max_examples=10, deadline=None)
@given(st.floats(1.0, 32.0), st.floats(1.0, 32.0))
def test_more_mlp_never_slower(m1, m2):
    lo, hi = sorted((m1, m2))
    slow = OoOCore(OoOConfig(max_mlp=lo)).run(mixed_trace())
    fast = OoOCore(OoOConfig(max_mlp=hi)).run(mixed_trace())
    assert fast.cycles <= slow.cycles + 1e-9


def test_fewer_mispredictions_never_slower():
    clean = TraceBlock("c", int_ops=100, branches=1000, branch_miss_rate=0.0)
    dirty = TraceBlock("d", int_ops=100, branches=1000, branch_miss_rate=0.2)
    core = OoOCore()
    assert core.block_cycles(clean) <= core.block_cycles(dirty)


def test_ooo_never_slower_than_inorder_on_same_trace():
    ooo = OoOCore().run(mixed_trace(seed=1))
    ino = InOrderCore(
        InOrderConfig(frequency_hz=3.6e9)  # same clock for a fair check
    ).run(mixed_trace(seed=1))
    assert ooo.cycles <= ino.cycles


def test_adding_work_never_speeds_up():
    small = mixed_trace(n=1024, seed=2)
    large = mixed_trace(n=4096, seed=2)
    core = OoOCore()
    t_small = core.run(small).cycles
    t_large = OoOCore().run(large).cycles
    assert t_large >= t_small
