"""Victim cache mode (Section VII)."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.memmode.victim_cache import VictimCache


def test_miss_then_hit():
    vc = VictimCache()
    assert vc.lookup(0x1000) is None
    vc.insert(0x1000)
    assert vc.lookup(0x1000) is not None


def test_index_bits_bounded_by_ten():
    assert VictimCache(num_rows=1024, ways=1).index_bits == 10
    with pytest.raises(ConfigError):
        VictimCache(num_rows=4096, ways=1)  # 12 index bits


def test_data_round_trip():
    vc = VictimCache(line_bytes=8)
    data = np.arange(8, dtype=np.uint8)
    vc.insert(0x40, data)
    out = vc.lookup(0x40)
    assert out.tolist() == data.tolist()


def test_lru_eviction_within_set():
    vc = VictimCache(num_rows=4, line_bytes=64, ways=2)  # 2 sets x 2 ways
    s = vc.num_sets
    vc.insert(0 * s * 64)       # set 0
    vc.insert(1 * s * 64)       # set 0, other tag
    vc.lookup(0 * s * 64)       # refresh first
    vc.insert(2 * s * 64)       # evicts tag 1
    assert vc.lookup(0 * s * 64) is not None
    assert vc.lookup(1 * s * 64) is None
    assert vc.stats.evictions == 1


def test_hit_rate_statistic():
    vc = VictimCache()
    vc.insert(0)
    vc.lookup(0)
    vc.lookup(12345678)
    assert vc.stats.hit_rate == pytest.approx(0.5)


def test_cycle_accounting():
    vc = VictimCache()
    c0 = vc.cycles
    vc.insert(0)
    assert vc.cycles > c0
    c1 = vc.cycles
    vc.lookup(0)
    assert vc.cycles > c1


def test_geometry_validated():
    with pytest.raises(ConfigError):
        VictimCache(num_rows=10, ways=3)
