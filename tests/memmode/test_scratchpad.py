"""Scratchpad mode (Section VII)."""

import numpy as np
import pytest

from repro.common.errors import CapacityError, ConfigError
from repro.csb.csb import CSB
from repro.memmode.scratchpad import ROW_READ_CYCLES, ROW_WRITE_CYCLES, Scratchpad


@pytest.fixture
def pad():
    return Scratchpad(CSB(num_chains=2, num_subarrays=4, num_cols=32))


def test_capacity_is_rows_times_subarrays_times_chains(pad):
    # 2 chains x 4 subarrays x 36 rows = 288 words.
    assert pad.capacity_words == 2 * 4 * 36


def test_word_round_trip(pad, rng):
    for addr in (0, 4, 128, 4 * (pad.capacity_words - 1)):
        value = int(rng.integers(0, 2**32))
        pad.write_word(addr, value)
        assert pad.read_word(addr) == value


def test_block_round_trip(pad, rng):
    values = rng.integers(0, 2**32, size=40)
    pad.write_block(0x40, values)
    assert pad.read_block(0x40, 40).tolist() == values.tolist()


def test_distinct_addresses_are_independent(pad):
    pad.write_word(0, 111)
    pad.write_word(4, 222)
    assert pad.read_word(0) == 111
    assert pad.read_word(4) == 222


def test_row_access_cycle_accounting(pad):
    start = pad.cycles
    pad.write_word(0, 1)
    assert pad.cycles == start + ROW_WRITE_CYCLES
    pad.read_word(0)
    assert pad.cycles == start + ROW_WRITE_CYCLES + ROW_READ_CYCLES


def test_alignment_enforced(pad):
    with pytest.raises(ConfigError):
        pad.read_word(2)


def test_capacity_enforced(pad):
    with pytest.raises(CapacityError):
        pad.read_word(4 * pad.capacity_words)
