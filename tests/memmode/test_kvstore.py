"""Key-value storage mode (Section VII)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import CapacityError
from repro.csb.csb import CSB
from repro.memmode.kvstore import ROW_PAIRS, KeyValueStore


@pytest.fixture
def store():
    return KeyValueStore(CSB(num_chains=2, num_subarrays=8, num_cols=4))


def test_capacity_matches_paper_formula():
    """A 32-subarray chain stores 16 x 32 = 512 pairs."""
    csb = CSB(num_chains=1, num_subarrays=8, num_cols=32)
    assert KeyValueStore(csb).capacity == 16 * 32


def test_insert_and_lookup(store):
    store.insert(42, 200)
    assert store.lookup(42) == 200


def test_values_must_fit_the_element_width(store):
    """An 8-subarray test chain stores 8-bit keys/values; the published
    32-subarray geometry stores 32-bit pairs."""
    from repro.common.errors import ConfigError

    with pytest.raises(ConfigError):
        store.insert(42, 1000)


def test_missing_key_returns_none(store):
    assert store.lookup(99) is None


def test_update_existing_key(store):
    store.insert(7, 1)
    store.insert(7, 2)
    assert store.lookup(7) == 2
    assert len(store) == 1


def test_delete(store):
    store.insert(5, 50)
    assert store.delete(5)
    assert store.lookup(5) is None
    assert not store.delete(5)


def test_slot_reuse_after_delete(store):
    for key in range(store.capacity):
        store.insert(key, key)
    with pytest.raises(CapacityError):
        store.insert(200, 0)
    store.delete(0)
    store.insert(200, 123)
    assert store.lookup(200) == 123


def test_fills_to_capacity(store):
    for key in range(store.capacity):
        store.insert(key + 1, key % 256)
    assert len(store) == store.capacity
    for key in range(store.capacity):
        assert store.lookup(key + 1) == key % 256


@settings(max_examples=10, deadline=None)
@given(st.dictionaries(st.integers(0, 200), st.integers(0, 255), min_size=1, max_size=30))
def test_behaves_like_a_dict(mapping):
    store = KeyValueStore(CSB(num_chains=2, num_subarrays=8, num_cols=4))
    for key, value in mapping.items():
        store.insert(key, value)
    for key, value in mapping.items():
        assert store.lookup(key) == value


def test_lookup_cost_counts_searches(store):
    store.insert(1, 1)
    before = store.cycles
    store.lookup(1)
    assert store.cycles > before
