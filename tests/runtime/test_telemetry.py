"""Telemetry records, aggregates, and table rendering."""

from repro.runtime import (
    DeviceRecord,
    JobRecord,
    Telemetry,
    TelemetryReport,
)


def record(job_id=0, name="j", submit=0.0, start=10.0, finish=30.0, **kwargs):
    kwargs.setdefault("device_id", 0)
    kwargs.setdefault("device_name", "nano#0")
    kwargs.setdefault("priority", 0)
    kwargs.setdefault("lanes", 64)
    kwargs.setdefault("validated", True)
    kwargs.setdefault("state", "done")
    return JobRecord(
        job_id=job_id,
        name=name,
        submit_cycle=submit,
        start_cycle=start,
        finish_cycle=finish,
        **kwargs,
    )


def report(jobs, devices=None, makespan=100.0, frequency=2.7e9, **kwargs):
    return TelemetryReport(
        jobs=jobs,
        devices=devices or [],
        makespan_cycles=makespan,
        frequency_hz=frequency,
        queue_samples=kwargs.pop("queue_samples", {}),
        **kwargs,
    )


def test_job_record_latency_phases():
    r = record(submit=5.0, start=12.0, finish=40.0)
    assert r.wait_cycles == 7.0
    assert r.service_cycles == 28.0
    assert r.turnaround_cycles == 35.0
    assert r.deadline_met is None
    assert record(finish=30.0, deadline_cycles=30.0).deadline_met is True
    assert record(finish=30.0, deadline_cycles=29.0).deadline_met is False


def test_device_record_aggregates():
    d = DeviceRecord(
        device_id=0,
        name="nano",
        max_vl=256,
        jobs_run=2,
        busy_cycles=50.0,
        lane_occupancies=[0.5, 1.0],
    )
    assert d.mean_occupancy == 0.75
    assert d.utilization(100.0) == 0.5
    assert d.utilization(0.0) == 0.0


def test_report_aggregates():
    jobs = [
        record(job_id=0, finish=20.0),
        record(job_id=1, finish=40.0),
        record(job_id=2, finish=100.0, validated=False, state="failed"),
    ]
    rep = report(jobs)
    assert rep.completed == 2
    assert rep.failed == 1
    assert rep.mean_turnaround_cycles() == (20 + 40 + 100) / 3
    assert rep.percentile_turnaround_cycles(50) == 40.0
    assert rep.percentile_turnaround_cycles(100) == 100.0
    assert rep.makespan_seconds == 100.0 / 2.7e9
    assert rep.throughput_jobs_per_s == 2 / rep.makespan_seconds


def test_queue_depth_histogram_merges_devices():
    rep = report(
        [],
        queue_samples={
            0: [(0.0, 0), (1.0, 2)],
            1: [(0.0, 2), (2.0, 1)],
        },
    )
    assert rep.queue_depth_histogram() == {0: 1, 1: 1, 2: 2}
    assert rep.queue_depth_histogram(device_id=0) == {0: 1, 2: 1}


def test_collector_records_lifecycle():
    from repro.runtime.job import Footprint, Job, JobState

    job = Job("t", lambda s: None, Footprint(lanes=8), deadline_cycles=50.0)
    job.submit_cycle, job.start_cycle, job.finish_cycle = 0.0, 5.0, 25.0
    job.device_id = 1
    job.state = JobState.DONE
    telemetry = Telemetry()
    telemetry.record_steal()
    telemetry.record_complete(job, "nano#1")
    rep = telemetry.report([], makespan_cycles=25.0, frequency_hz=1e9)
    assert rep.steals == 1
    assert len(rep.jobs) == 1
    assert rep.jobs[0].device_name == "nano#1"
    assert rep.jobs[0].deadline_met is True
    # Jobs without a result record as unvalidated, not as a crash.
    assert rep.jobs[0].validated is False


def test_tables_render():
    jobs = [record(job_id=0, name="alpha", deadline_cycles=10.0)]
    devices = [
        DeviceRecord(
            device_id=0,
            name="nano",
            max_vl=256,
            jobs_run=1,
            busy_cycles=20.0,
            lane_occupancies=[0.25],
        )
    ]
    rep = report(jobs, devices=devices, queue_samples={0: [(0.0, 1)]})
    assert "alpha" in rep.job_table()
    assert "MISSED" in rep.job_table()
    assert "nano" in rep.device_table()
    assert "25.0" in rep.device_table()  # occupancy %
    assert "queue depth" in rep.queue_table()
    summary = rep.summary()
    assert "1/1 jobs completed" in summary
    assert "steal" in summary
