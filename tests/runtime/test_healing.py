"""Pool self-healing: retries, quarantine, device death, stall detection.

Every scenario drives real injected faults (:mod:`repro.faults`) through
the pool's event loop and checks the stream still completes — or that
the pool *says so* loudly (:class:`PoolStalledError`) when it cannot.
"""

import numpy as np
import pytest

from repro.common.errors import PoolStalledError
from repro.engine.system import CAPEConfig
from repro.faults import DeviceKill, FaultPlan, TransferFault
from repro.obs import Observer
from repro.runtime.health import DeviceHealth, HealthState
from repro.runtime.job import Footprint, Job, JobState, SegmentedJob
from repro.runtime.pool import DevicePool

NANO = CAPEConfig(name="nano", num_chains=8)  # 256 lanes


def load_job(name, n=64, seed=1, **kwargs):
    """A job whose input rides the VMU load path (transfer faults bite)."""
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 1 << 20, size=n).astype(np.int64)

    def body(system):
        system.memory.write_words(0x1000, data)
        system.vsetvl(n)
        system.vle(1, 0x1000)
        system.vadd(2, 1, 1)
        return int(system.vredsum(2, signed=False))

    kwargs.setdefault("golden", int(2 * data.sum()))
    return Job(name, body, Footprint(lanes=n, resident=True), **kwargs)


# ----------------------------------------------------------------------
# Health ledger unit behaviour
# ----------------------------------------------------------------------


def test_health_walks_the_state_machine():
    h = DeviceHealth(failure_threshold=2, quarantine_cycles=100.0)
    assert h.state is HealthState.HEALTHY and h.accepting
    assert h.record_failure(now=10.0) is False
    assert h.record_failure(now=20.0) is True  # threshold reached
    assert h.state is HealthState.QUARANTINED and not h.accepting
    assert h.quarantined_until == 120.0
    assert h.readmit(now=50.0) is False  # too early
    assert h.readmit(now=120.0) is True
    assert h.state is HealthState.PROBATION and h.accepting
    h.record_success()
    assert h.state is HealthState.HEALTHY


def test_probation_failure_requarantines_with_doubled_backoff():
    h = DeviceHealth(failure_threshold=3, quarantine_cycles=100.0)
    for _ in range(3):
        h.record_failure(now=0.0)
    assert h.quarantined_until == 100.0
    h.readmit(now=100.0)
    assert h.record_failure(now=100.0) is True  # one strike on probation
    assert h.state is HealthState.QUARANTINED
    assert h.quarantined_until == 300.0  # backoff doubled to 200


def test_dead_is_terminal():
    h = DeviceHealth()
    h.kill()
    assert not h.accepting and not h.alive
    assert h.readmit(now=1e12) is False


# ----------------------------------------------------------------------
# Retry and re-placement
# ----------------------------------------------------------------------


def test_transient_failure_retries_on_another_device():
    # Device 0's first two loads are corrupted; the retried job is
    # steered to device 1 and completes.
    plan = FaultPlan([
        TransferFault(kind="load", at_transfer=1, element=3, bit=5, device=0),
        TransferFault(kind="load", at_transfer=2, element=3, bit=5, device=0),
    ])
    obs = Observer()
    pool = DevicePool(
        (NANO, NANO), memory_bytes=1 << 22, fault_plan=plan, observer=obs,
    )
    job = pool.submit(load_job("flaky-load"))
    report = pool.run()
    assert job.state is JobState.DONE
    assert job.attempts == 1
    assert report.completed == 1 and report.failed == 0
    assert report.retries == 1
    assert obs.metrics.value("runtime.retries") == 1
    record = report.jobs[0]
    assert record.attempts == 1 and record.validated


def test_retry_backoff_doubles_per_attempt():
    plan = FaultPlan([
        TransferFault(kind="load", at_transfer=t, element=0, bit=1, device=0)
        for t in (1, 2)
    ])
    pool = DevicePool(
        (NANO,), memory_bytes=1 << 22, fault_plan=plan,
        retry_backoff_cycles=1_000.0, failure_threshold=10,
    )
    job = pool.submit(load_job("slow-heal"))
    report = pool.run()
    assert job.state is JobState.DONE and job.attempts == 2
    # Attempt 1 re-queued after 1,000 cycles, attempt 2 after 2,000 more:
    # the finish time carries both backoffs.
    assert report.jobs[0].turnaround_cycles >= 3_000.0


def test_retry_exhaustion_fails_the_job_with_a_named_error():
    plan = FaultPlan([
        TransferFault(kind="load", at_transfer=t, element=0, bit=1, device=0)
        for t in (1, 2, 3, 4, 5, 6)
    ])
    pool = DevicePool(
        (NANO,), memory_bytes=1 << 22, fault_plan=plan,
        max_retries=2, failure_threshold=10,
    )
    job = pool.submit(load_job("doomed"))
    report = pool.run()
    assert job.state is JobState.FAILED
    assert job.attempts == 3  # initial + 2 retries
    assert report.failed == 1
    assert "RetryExhaustedError" in report.jobs[0].error
    assert "doomed" in report.jobs[0].error


# ----------------------------------------------------------------------
# Quarantine and probation
# ----------------------------------------------------------------------


def test_repeated_failures_quarantine_then_probation_heals():
    # Three corrupted loads in a row trip the threshold; the quarantine
    # lapses, the probe (4th attempt) runs clean, and the device returns
    # to HEALTHY with the job DONE.
    plan = FaultPlan([
        TransferFault(kind="load", at_transfer=t, element=0, bit=1, device=0)
        for t in (1, 2, 3)
    ])
    obs = Observer()
    pool = DevicePool(
        (NANO,), memory_bytes=1 << 22, fault_plan=plan, observer=obs,
        max_retries=3, failure_threshold=2, quarantine_cycles=5_000.0,
        retry_backoff_cycles=500.0,
    )
    job = pool.submit(load_job("survivor"))
    report = pool.run()
    assert job.state is JobState.DONE
    assert report.completed == 1
    assert report.quarantines >= 1
    assert obs.metrics.value("runtime.quarantined") == report.quarantines
    assert pool.devices[0].health.state is HealthState.HEALTHY


def test_quarantined_device_gets_no_new_work():
    pool = DevicePool((NANO, NANO), memory_bytes=1 << 22)
    pool.devices[0].health.quarantine(now=0.0)
    job = pool.submit(load_job("routed"))
    pool.run()
    assert job.device_id == 1


# ----------------------------------------------------------------------
# Device death
# ----------------------------------------------------------------------


def test_device_death_is_terminal_and_work_moves_on():
    plan = FaultPlan([DeviceKill(at_cycle=1.0, device=0)])
    obs = Observer()
    pool = DevicePool(
        (NANO, NANO), memory_bytes=1 << 22, fault_plan=plan, observer=obs,
    )
    jobs = [pool.submit(load_job(f"j{i}", seed=i), at_cycle=i * 10.0)
            for i in range(4)]
    report = pool.run()
    assert all(j.state is JobState.DONE for j in jobs)
    assert report.device_deaths == 1
    assert not pool.devices[0].health.alive
    assert obs.metrics.value("runtime.device_deaths") == 1
    # Every completed execution ran on the surviving device.
    assert {r.device_id for r in report.jobs} == {1}


# ----------------------------------------------------------------------
# Stall detection (no silent partial returns)
# ----------------------------------------------------------------------


def test_all_devices_dead_raises_pool_stalled_error():
    plan = FaultPlan([DeviceKill(at_cycle=1.0, device=0)])
    pool = DevicePool((NANO,), memory_bytes=1 << 22, fault_plan=plan)
    pool.submit(load_job("first"))
    pool.submit(load_job("second"), at_cycle=50_000.0)
    with pytest.raises(PoolStalledError) as excinfo:
        pool.run()
    assert "quarantined or dead" in str(excinfo.value)
    assert "first" in excinfo.value.job_names
    assert "second" in excinfo.value.job_names


def test_event_budget_exhaustion_raises_pool_stalled_error():
    pool = DevicePool((NANO,), memory_bytes=1 << 22)
    pool.submit(load_job("a"))
    pool.submit(load_job("b"), at_cycle=10.0)
    with pytest.raises(PoolStalledError) as excinfo:
        pool.run(max_events=1)
    assert "event budget" in str(excinfo.value)
    assert excinfo.value.job_names  # names the stranded work


def test_fault_free_pool_still_drains_and_reports():
    pool = DevicePool((NANO, NANO), memory_bytes=1 << 22)
    jobs = [pool.submit(load_job(f"c{i}", seed=i)) for i in range(6)]
    report = pool.run()
    assert report.completed == 6 and report.failed == 0
    assert report.retries == 0 and report.quarantines == 0
    assert all(j.state is JobState.DONE for j in jobs)
