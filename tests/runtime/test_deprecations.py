"""The PR-3 deprecation shims keep warning and keep working."""

import importlib
import sys
import warnings

import pytest


class TestTelemetryModuleShim:
    def test_import_warns_and_reexports(self):
        # Module-level warnings fire at first import; drop any cached
        # module so this test controls the import.
        sys.modules.pop("repro.runtime.telemetry", None)
        with pytest.warns(
            DeprecationWarning, match="repro.runtime.telemetry is deprecated"
        ):
            import repro.runtime.telemetry as shim
        import repro.runtime._telemetry as canonical

        for name in ("Telemetry", "TelemetryReport", "JobRecord", "DeviceRecord"):
            assert getattr(shim, name) is getattr(canonical, name)

    def test_cached_reimport_is_silent(self):
        sys.modules.pop("repro.runtime.telemetry", None)
        with pytest.warns(DeprecationWarning):
            importlib.import_module("repro.runtime.telemetry")
        # Second import hits sys.modules: no module code re-runs.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            importlib.import_module("repro.runtime.telemetry")


class TestCAPERunStatsShim:
    def test_access_warns_and_aliases_obs(self):
        import repro.engine.system as system_module
        from repro.obs import CAPERunStats as canonical

        with pytest.warns(DeprecationWarning, match="repro.obs"):
            shimmed = system_module.CAPERunStats
        assert shimmed is canonical

    def test_unknown_attribute_still_raises(self):
        import repro.engine.system as system_module

        with pytest.raises(AttributeError):
            system_module.definitely_not_a_name
