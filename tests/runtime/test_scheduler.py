"""Queue-ordering policies and capacity admission."""

from collections import deque

import pytest

from repro.common.errors import ConfigError, CSBCapacityError
from repro.engine.system import CAPEConfig
from repro.runtime.job import Footprint, Job, SegmentedJob
from repro.runtime.scheduler import (
    POLICIES,
    BestFitPolicy,
    FIFOPolicy,
    Scheduler,
    ShortestJobFirstPolicy,
    make_policy,
)

NANO = CAPEConfig(name="nano", num_chains=8)  # 256 lanes


def job(name, lanes=8, priority=0, estimate=None, resident=True):
    return Job(
        name,
        body=lambda system: None,
        footprint=Footprint(lanes=lanes, resident=resident),
        priority=priority,
        estimated_cycles=estimate,
    )


def names(queue):
    return [j.name for j in queue]


def test_fifo_is_submission_order():
    queue = [job("a"), job("b"), job("c")]
    policy = FIFOPolicy()
    assert policy.select(queue, NANO) == 0


def test_priority_band_preempts_order_in_every_policy():
    queue = [job("low"), job("hi", priority=5), job("hi2", priority=5)]
    for name in POLICIES:
        picked = make_policy(name).select(queue, NANO)
        assert queue[picked].priority == 5, name


def test_sjf_picks_smallest_estimate():
    queue = [job("slow", estimate=100), job("fast", estimate=1), job("mid", estimate=50)]
    assert ShortestJobFirstPolicy().select(queue, NANO) == 1


def test_sjf_falls_back_to_lane_count():
    queue = [job("wide", lanes=200), job("narrow", lanes=10)]
    assert ShortestJobFirstPolicy().select(queue, NANO) == 1


def test_best_fit_prefers_largest_fitting_footprint():
    queue = [job("small", lanes=10), job("big", lanes=200), job("mid", lanes=100)]
    assert BestFitPolicy().select(queue, NANO) == 1


def test_best_fit_ranks_oversized_after_fitting():
    big = SegmentedJob("huge", 1000, lambda *a: None, live_vregs=(1,))
    queue = [big, job("fits", lanes=64)]
    assert BestFitPolicy().select(queue, NANO) == 1


def test_best_fit_falls_back_to_fifo_when_nothing_fits():
    a = SegmentedJob("h1", 1000, lambda *a: None, live_vregs=(1,))
    b = SegmentedJob("h2", 2000, lambda *a: None, live_vregs=(1,))
    queue = [a, b]
    assert BestFitPolicy().select(queue, NANO) == 0


def test_empty_queue_selects_none():
    for name in POLICIES:
        assert make_policy(name).select([], NANO) is None


def test_make_policy_resolves_names_and_instances():
    assert isinstance(make_policy("sjf"), ShortestJobFirstPolicy)
    inst = BestFitPolicy()
    assert make_policy(inst) is inst
    with pytest.raises(ConfigError):
        make_policy("lottery")


def test_admit_fits_spillable_and_refused():
    scheduler = Scheduler("fifo")
    assert scheduler.admit(job("ok", lanes=256), NANO) is True
    seg = SegmentedJob("seg", 1000, lambda *a: None, live_vregs=(1,))
    assert scheduler.admit(seg, NANO) is False  # spill-served
    with pytest.raises(CSBCapacityError):
        scheduler.admit(job("nope", lanes=1000), NANO)


def test_pick_removes_the_selected_job():
    queue = deque([job("a", estimate=9), job("b", estimate=1)])
    scheduler = Scheduler("sjf")
    picked = scheduler.pick(queue, NANO)
    assert picked.name == "b"
    assert names(queue) == ["a"]
    assert scheduler.pick(deque(), NANO) is None
