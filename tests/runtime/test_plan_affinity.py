"""Plan-affinity placement: warm-cache tie-breaking, deterministically.

``DevicePool(plan_affinity=True)`` inserts one extra key between
capacity and load in the best-fit ordering: among equal-capacity
devices, prefer one already placed for the job's kernel. The contract
under test: placement stays fully deterministic, is unchanged
bit-for-bit when affinity is off (and trivially when only one device
exists), jobs of one kernel converge onto one warm device, and the
``affinity_hits`` / ``affinity_misses`` counters land in the
:meth:`~repro.plan.PlanCache.snapshot` surface.
"""

import numpy as np

from repro.engine.system import CAPEConfig
from repro.plan import PlanCache
from repro.runtime.pool import DevicePool
from repro.serve.spec import JobSpec

TINY = CAPEConfig(name="tiny-aff", num_chains=64)


def spec(name, kernel, i=0):
    payloads = {
        "dot": {"x": np.arange(8) + i, "y": np.arange(8)},
        "vadd_sum": {"data": np.arange(8) + i},
    }
    return JobSpec(name, kernel, payloads[kernel], lanes=8)


def run_mix(num_devices, plan_affinity, cache=None):
    """Run an alternating two-kernel mix; return (schedule, outputs,
    pool) with the schedule as ``[(job name, device_id)]``."""
    pool = DevicePool(
        (TINY,) * num_devices,
        plan_cache=cache if cache is not None else PlanCache(),
        plan_affinity=plan_affinity,
        superplan=True,
        backend="bitplane",
        # Stealing re-homes queued jobs after placement; this suite
        # asserts on the placement decision itself.
        work_stealing=False,
    )
    jobs = [
        spec(f"j{i}", ("dot", "vadd_sum")[i % 2], i).to_job()
        for i in range(8)
    ]
    for job in jobs:
        pool.submit(job)
    report = pool.run()
    schedule = [(j.name, j.device_id) for j in report.jobs]
    outputs = [job.result.output for job in jobs]
    return schedule, outputs, pool


class TestAffinityDeterminism:
    def test_single_device_affinity_is_a_no_op(self):
        on = run_mix(1, True)
        off = run_mix(1, False)
        assert on[0] == off[0]
        assert on[1] == off[1]

    def test_affinity_on_is_deterministic(self):
        first = run_mix(2, True)
        second = run_mix(2, True)
        assert first[0] == second[0]
        assert first[1] == second[1]

    def test_affinity_off_records_nothing(self):
        cache = PlanCache()
        _, _, pool = run_mix(2, False, cache=cache)
        snap = cache.snapshot()
        assert snap["affinity_hits"] == 0
        assert snap["affinity_misses"] == 0
        assert pool._affinity_hits == 0 and pool._affinity_misses == 0

    def test_kernels_converge_onto_warm_devices(self):
        cache = PlanCache()
        schedule, outputs, pool = run_mix(2, True, cache=cache)
        by_kernel = {}
        for name, device_id in schedule:
            kernel = "dot" if int(name[1:]) % 2 == 0 else "vadd_sum"
            by_kernel.setdefault(kernel, set()).add(device_id)
        # Each kernel sticks to the one device whose cache it warmed.
        assert all(len(devs) == 1 for devs in by_kernel.values())
        snap = cache.snapshot()
        assert snap["affinity_hits"] + snap["affinity_misses"] == len(schedule)
        # First placement of each kernel is cold, the rest are warm.
        assert snap["affinity_misses"] == 2
        assert snap["affinity_hits"] == len(schedule) - 2

    def test_results_do_not_depend_on_affinity(self):
        on = run_mix(2, True)
        off = run_mix(2, False)
        assert on[1] == off[1]
