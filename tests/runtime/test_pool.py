"""Device pool: placement, stealing, spill service, reporting."""

import numpy as np
import pytest

from repro.common.errors import ConfigError, CSBCapacityError
from repro.engine.system import CAPEConfig
from repro.runtime.job import Footprint, Job, SegmentedJob
from repro.runtime.pool import DevicePool

NANO = CAPEConfig(name="nano", num_chains=8)  # 256 lanes
SMALL = CAPEConfig(name="small", num_chains=32)  # 1,024 lanes


def sum_job(name, lanes, value=3, **kwargs):
    def body(system):
        system.vsetvl(min(lanes, system.config.max_vl))
        system.vmv_vx(1, value)
        return int(system.vredsum(1, signed=False))

    kwargs.setdefault("golden", min(lanes, 256) * value)
    footprint = Footprint(lanes=lanes, resident=kwargs.pop("resident", True))
    return Job(name, body, footprint, **kwargs)


def accumulate_job(n, passes=2, seed=5, **kwargs):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 1 << 16, size=n).astype(np.int64)
    base = 0x0010_0000

    def segment(system, offset, vl, pass_index):
        if pass_index == 0:
            system.memory.write_words(base + 4 * offset, a[offset : offset + vl])
            system.vle(1, base + 4 * offset)
            system.vmv_vx(2, 0)
        system.vadd(2, 2, 1)
        if pass_index == passes - 1:
            return int(system.vredsum(2, signed=False))

    return SegmentedJob(
        "accum",
        total_lanes=n,
        segment_body=segment,
        live_vregs=(1, 2),
        passes=passes,
        finalize=sum,
        golden=int(passes * a.sum()),
        **kwargs,
    )


def test_placement_prefers_smallest_fitting_device():
    pool = DevicePool((SMALL, NANO), memory_bytes=1 << 22)
    device = pool.place(sum_job("j", lanes=200))
    assert device.config is NANO
    device = pool.place(sum_job("wide", lanes=500))
    assert device.config is SMALL


def test_placement_breaks_capacity_ties_by_load():
    pool = DevicePool((NANO, NANO), memory_bytes=1 << 22)
    pool.devices[0].queue.append(sum_job("queued", lanes=8))
    device = pool.place(sum_job("j", lanes=8))
    assert device.device_id == 1


def test_oversized_spillable_lands_on_largest_device():
    pool = DevicePool((NANO, SMALL), memory_bytes=1 << 26)
    device = pool.place(accumulate_job(5000))
    assert device.config is SMALL


def test_oversized_rigid_job_is_refused_with_structured_error():
    pool = DevicePool((NANO, SMALL), memory_bytes=1 << 22)
    with pytest.raises(CSBCapacityError) as excinfo:
        pool.place(sum_job("rigid", lanes=5000))
    assert excinfo.value.requested_lanes == 5000
    assert excinfo.value.available_lanes == SMALL.max_vl


def test_pool_runs_stream_to_completion():
    pool = DevicePool((NANO, NANO), policy="sjf", memory_bytes=1 << 22)
    jobs = [sum_job(f"j{i}", lanes=64 + i) for i in range(6)]
    pool.submit_stream(jobs, interarrival_cycles=10.0)
    report = pool.run()
    assert report.completed == 6
    assert report.failed == 0
    assert all(j.validated for j in report.jobs)
    assert report.makespan_cycles == max(d.busy_until for d in pool.devices)
    assert sum(d.jobs_run for d in pool.devices) == 6


def test_idle_device_steals_from_loaded_peer():
    # Placement always prefers the nano device, so every job queues
    # there; the big device only gets work by stealing.
    pool = DevicePool((NANO, SMALL), policy="fifo", memory_bytes=1 << 22)
    jobs = [sum_job(f"j{i}", lanes=32) for i in range(6)]
    for job in jobs:
        pool.submit(job)
    report = pool.run()
    assert report.completed == 6
    assert report.steals > 0
    assert any(j.stolen for j in report.jobs)
    assert pool.devices[1].jobs_run > 0


def test_work_stealing_can_be_disabled():
    pool = DevicePool(
        (NANO, SMALL), policy="fifo", work_stealing=False, memory_bytes=1 << 22
    )
    for i in range(6):
        pool.submit(sum_job(f"j{i}", lanes=32))
    report = pool.run()
    assert report.steals == 0
    assert pool.devices[1].jobs_run == 0  # placement never chose it


def test_oversized_job_is_spill_served_in_the_pool():
    pool = DevicePool((NANO,), memory_bytes=1 << 26)
    big = accumulate_job(600, passes=2)
    pool.submit(big)
    pool.submit(sum_job("small", lanes=32))
    report = pool.run()
    assert report.completed == 2
    record = next(j for j in report.jobs if j.name == "accum")
    assert record.validated
    assert record.spills > 0
    assert record.restores > 0


def test_priority_runs_before_fifo_order():
    pool = DevicePool((NANO,), policy="fifo", memory_bytes=1 << 22)
    pool.submit(sum_job("first", lanes=32), at_cycle=0.0)
    pool.submit(sum_job("low", lanes=32), at_cycle=1.0)
    pool.submit(sum_job("hi", lanes=32, priority=3), at_cycle=2.0)
    report = pool.run()
    order = [j.name for j in sorted(report.jobs, key=lambda j: j.start_cycle)]
    # "first" starts immediately; the priority job jumps the queue.
    assert order == ["first", "hi", "low"]


def test_resubmission_is_rejected():
    pool = DevicePool((NANO,), memory_bytes=1 << 22)
    job = sum_job("once", lanes=8)
    pool.submit(job)
    with pytest.raises(ConfigError):
        pool.submit(job)


def test_failed_validation_is_reported_not_raised():
    pool = DevicePool((NANO,), memory_bytes=1 << 22)
    pool.submit(sum_job("bad", lanes=8, golden=-1))
    report = pool.run()
    assert report.failed == 1
    assert report.completed == 0


def test_devices_are_reset_between_jobs():
    leak = {}

    def first(system):
        system.vsetvl(16)
        system.vmv_vx(5, 77)
        return 0

    def second(system):
        leak["vl"] = system.vl
        leak["v5"] = int(system.vregs[5, 0])
        return 0

    pool = DevicePool((NANO,), memory_bytes=1 << 22)
    pool.submit(Job("a", first, Footprint(lanes=16), golden=0))
    pool.submit(Job("b", second, Footprint(lanes=16), golden=0))
    pool.run()
    assert leak == {"vl": NANO.max_vl, "v5": 0}


def test_empty_pool_configuration_is_rejected():
    with pytest.raises(ConfigError):
        DevicePool(())
