"""Job abstraction: footprints, execution, validation, segmentation."""

import numpy as np
import pytest

from repro.common.errors import ConfigError, CSBCapacityError
from repro.engine.system import CAPEConfig, CAPESystem
from repro.runtime.job import Footprint, Job, JobState, SegmentedJob
from repro.workloads.micro import VVAdd

NANO = CAPEConfig(name="nano", num_chains=8)  # 256 lanes
SMALL = CAPEConfig(name="small", num_chains=32)  # 1,024 lanes


def make_cape(config=NANO):
    return CAPESystem(config)


def sum_job(name, lanes, value, **kwargs):
    """A job filling ``lanes`` elements with ``value`` and reducing."""

    def body(system):
        system.vsetvl(lanes)
        system.vmv_vx(1, value)
        return int(system.vredsum(1, signed=False))

    kwargs.setdefault("golden", lanes * value)
    return Job(name, body, Footprint(lanes=lanes), **kwargs)


# -- footprints ---------------------------------------------------------


def test_footprint_validation():
    with pytest.raises(ConfigError):
        Footprint(lanes=0)
    with pytest.raises(ConfigError):
        Footprint(lanes=8, vregs=0)
    with pytest.raises(ConfigError):
        Footprint(lanes=8, vregs=CAPESystem.NUM_VREGS + 1)


def test_resident_footprint_fits_by_lanes():
    assert Footprint(lanes=256).fits(NANO)
    assert not Footprint(lanes=257).fits(NANO)
    assert Footprint(lanes=257).fits(SMALL)


def test_non_resident_footprint_fits_anywhere():
    assert Footprint(lanes=10**9, resident=False).fits(NANO)


def test_footprint_check_raises_structured_error():
    with pytest.raises(CSBCapacityError) as excinfo:
        Footprint(lanes=1000, vregs=4).check(NANO)
    err = excinfo.value
    assert err.requested_lanes == 1000
    assert err.available_lanes == 256
    assert err.shortfall_lanes == 744
    assert err.requested_chains == -(-1000 // 32)
    assert err.requested_registers == 4


# -- execution ----------------------------------------------------------


def test_job_executes_and_validates_golden():
    job = sum_job("sum", lanes=100, value=3)
    result = job.execute(make_cape())
    assert result.output == 300
    assert result.validated
    assert result.service_cycles > 0
    assert result.energy_j > 0
    assert result.error is None


def test_golden_mismatch_fails_validation():
    job = sum_job("bad", lanes=100, value=3, golden=301)
    result = job.execute(make_cape())
    assert not result.validated


def test_validate_callable_wins_over_golden():
    job = sum_job("pred", lanes=10, value=2, golden=999)
    job.validate = lambda out: out == 20
    assert job.execute(make_cape()).validated


def test_library_errors_are_captured_not_raised():
    def body(system):
        system.vsetvl(-1)  # structured capacity error

    job = Job("boom", body, Footprint(lanes=8))
    result = job.execute(make_cape())
    assert not result.validated
    assert "CSBCapacityError" in result.error


def test_from_workload_infers_lanes_and_validates():
    job = Job.from_workload(VVAdd(n=512, seed=3))
    assert job.footprint.lanes == 512
    assert not job.footprint.resident  # workloads strip-mine
    result = job.execute(make_cape())
    assert result.validated
    assert job.name == "vvadd"


def test_from_program_runs_through_interpreter():
    job = Job.from_program(
        "asm",
        """
            li a0, 6
            li a1, 7
            mul a2, a0, a1
            ecall
        """,
        footprint=Footprint(lanes=1),
        validate=lambda res: res.xregs[12] == 42,
    )
    assert job.execute(make_cape()).validated


def test_job_lifecycle_defaults():
    job = sum_job("fresh", lanes=8, value=1)
    assert job.state is JobState.PENDING
    assert job.result is None
    assert job.service_estimate == 8.0
    job.estimated_cycles = 99
    assert job.service_estimate == 99.0


# -- segmented jobs -----------------------------------------------------


def accumulate_job(n, passes=2, seed=5):
    """y = passes * a over ``n`` resident lanes, segment-at-a-time."""
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 1 << 16, size=n).astype(np.int64)
    base = 0x0010_0000

    def segment(system, offset, vl, pass_index):
        if pass_index == 0:
            system.memory.write_words(base + 4 * offset, a[offset : offset + vl])
            system.vle(1, base + 4 * offset)
            system.vmv_vx(2, 0)
        system.vadd(2, 2, 1)
        if pass_index == passes - 1:
            return int(system.vredsum(2, signed=False))

    return SegmentedJob(
        "accum",
        total_lanes=n,
        segment_body=segment,
        live_vregs=(1, 2),
        passes=passes,
        finalize=sum,
        golden=int(passes * a.sum()),
    )


def test_segments_partition_the_footprint():
    job = accumulate_job(600)
    segs = job.segments(NANO)
    assert segs == [(0, 256), (256, 256), (512, 88)]
    assert sum(vl for _, vl in segs) == 600


def test_oversized_job_is_spill_served_and_exact():
    job = accumulate_job(600, passes=3)
    result = job.execute(make_cape())
    assert result.validated, result.error
    # 3 segments x 3 passes = 9 visits; every visit but the last spills,
    # every revisit restores.
    assert result.spills == 8
    assert result.restores == 6
    assert job.context_stats.bytes_spilled > 0


def test_fitting_segmented_job_never_touches_the_spill_path():
    job = accumulate_job(200, passes=2)
    result = job.execute(make_cape())
    assert result.validated
    assert result.spills == 0
    assert result.restores == 0


def test_segmented_job_validation():
    with pytest.raises(ConfigError):
        SegmentedJob("x", 8, lambda *a: None, live_vregs=())
    with pytest.raises(ConfigError):
        SegmentedJob("x", 8, lambda *a: None, live_vregs=(1,), passes=0)
