"""Context spill/restore through the VMU spill slab."""

import numpy as np
import pytest

from repro.common.errors import CapacityError, ConfigError
from repro.engine.system import CAPEConfig, CAPESystem
from repro.runtime.context import SPILL_BASE, ContextManager


def make_cape():
    return CAPESystem(CAPEConfig(name="t", num_chains=8))  # 256 lanes


def fill_regs(cape, regs, vl, seed=1):
    rng = np.random.default_rng(seed)
    values = {}
    cape.vsetvl(vl)
    for r in regs:
        v = rng.integers(0, 1 << 32, size=vl, dtype=np.int64)
        cape.vregs[r, :vl] = v
        values[r] = v.copy()
    return values


def test_spill_restore_round_trips_state():
    cape = make_cape()
    values = fill_regs(cape, (1, 3), vl=100)
    manager = ContextManager(cape)
    manager.spill("seg", (1, 3))
    # Clobber everything the context should bring back.
    cape.vsetvl(256)
    cape.vregs[1, :] = -1
    cape.vregs[3, :] = -1
    manager.restore("seg")
    assert cape.vl == 100
    assert cape.vstart == 0
    for r in (1, 3):
        np.testing.assert_array_equal(cape.vregs[r, :100], values[r])


def test_spill_charges_hbm_cycles_and_energy():
    cape = make_cape()
    fill_regs(cape, (2,), vl=64)
    cycles0 = cape.stats.cycles
    energy0 = cape.stats.energy_j
    manager = ContextManager(cape)
    manager.spill(0, (2,))
    manager.restore(0)
    assert cape.stats.cycles > cycles0
    assert cape.stats.energy_j > energy0
    assert cape.vmu.stats.spills == 1
    assert cape.vmu.stats.fills == 1
    assert manager.stats.spills == 1
    assert manager.stats.restores == 1
    assert manager.stats.bytes_spilled == 64 * 4
    assert manager.stats.bytes_restored == 64 * 4
    assert manager.stats.cycles > 0


def test_slot_reuse_keeps_address_for_compatible_respill():
    cape = make_cape()
    fill_regs(cape, (1,), vl=128)
    manager = ContextManager(cape)
    first = manager.spill("k", (1,))
    cape.vsetvl(64)  # smaller window fits the same slot
    second = manager.spill("k", (1,))
    assert second.addr == first.addr
    assert second.capacity_words == first.capacity_words


def test_duplicate_registers_are_spilled_once():
    cape = make_cape()
    fill_regs(cape, (4,), vl=16)
    manager = ContextManager(cape)
    ctx = manager.spill("k", (4, 4, 4))
    assert ctx.regs == (4,)
    assert ctx.words == 16


def test_slab_exhaustion_raises_capacity_error():
    cape = make_cape()
    fill_regs(cape, (1, 2), vl=256)
    manager = ContextManager(
        cape, base=SPILL_BASE, limit=SPILL_BASE + 256 * 4
    )  # room for one register, not two
    with pytest.raises(CapacityError):
        manager.spill("big", (1, 2))


def test_restore_of_unknown_key_raises():
    cape = make_cape()
    manager = ContextManager(cape)
    with pytest.raises(ConfigError):
        manager.restore("nope")


def test_empty_register_set_is_rejected():
    cape = make_cape()
    manager = ContextManager(cape)
    with pytest.raises(ConfigError):
        manager.spill("k", ())


def test_misaligned_base_is_rejected():
    cape = make_cape()
    with pytest.raises(ConfigError):
        ContextManager(cape, base=SPILL_BASE + 1)


def test_restore_rearms_sew():
    cape = make_cape()
    cape.set_sew(16)
    fill_regs(cape, (1,), vl=32)
    cape.vregs[1, :32] &= 0xFFFF
    saved = cape.vregs[1, :32].copy()
    manager = ContextManager(cape)
    manager.spill("s", (1,))
    cape.set_sew(32)
    cape.vregs[1, :] = 0
    manager.restore("s")
    assert cape.sew == 16
    np.testing.assert_array_equal(cape.vregs[1, :32], saved)
