"""Deterministic simulated-clock event loop."""

import pytest

from repro.common.errors import ConfigError
from repro.runtime.clock import SimClock


def test_events_fire_in_time_order():
    clock = SimClock()
    fired = []
    clock.schedule_at(30.0, lambda: fired.append("c"))
    clock.schedule_at(10.0, lambda: fired.append("a"))
    clock.schedule_at(20.0, lambda: fired.append("b"))
    clock.run()
    assert fired == ["a", "b", "c"]
    assert clock.now == 30.0
    assert clock.events_fired == 3


def test_ties_break_by_schedule_order():
    clock = SimClock()
    fired = []
    for label in "abcd":
        clock.schedule_at(5.0, lambda l=label: fired.append(l))
    clock.run()
    assert fired == list("abcd")


def test_schedule_in_is_relative_to_now():
    clock = SimClock()
    times = []
    clock.schedule_at(100.0, lambda: clock.schedule_in(7.0, lambda: times.append(clock.now)))
    clock.run()
    assert times == [107.0]


def test_scheduling_in_the_past_is_rejected():
    clock = SimClock()
    clock.schedule_at(50.0, lambda: None)
    clock.run()
    with pytest.raises(ConfigError):
        clock.schedule_at(10.0, lambda: None)


def test_tick_fires_exactly_one_event():
    clock = SimClock()
    fired = []
    clock.schedule_at(1.0, lambda: fired.append(1))
    clock.schedule_at(2.0, lambda: fired.append(2))
    assert len(clock) == 2
    assert clock.tick() is True
    assert fired == [1]
    assert len(clock) == 1


def test_runaway_loop_is_capped():
    clock = SimClock()

    def rearm():
        clock.schedule_in(1.0, rearm)

    clock.schedule_at(0.0, rearm)
    with pytest.raises(ConfigError):
        clock.run(max_events=100)
