"""DevicePool thread parallelism warns (once) where threads can't help."""

import warnings

import pytest

import repro.runtime.pool as pool_module
from repro.engine.system import CAPEConfig
from repro.runtime import DevicePool, ThreadParallelismWarning

TINY = CAPEConfig(name="tiny", num_chains=64)


@pytest.fixture
def single_cpu(monkeypatch):
    """Pretend to be the 1-CPU host BENCH_5 measured 0.85x on."""
    monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 1)
    monkeypatch.setattr(pool_module, "_thread_parallelism_warned", False)


def test_warns_once_on_single_cpu_and_points_at_serve(single_cpu):
    with pytest.warns(ThreadParallelismWarning, match="repro.serve"):
        DevicePool([TINY], parallelism=2)
    # One warning per process: a second pool stays quiet.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        DevicePool([TINY], parallelism=2)


def test_sequential_pool_never_warns(single_cpu):
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        DevicePool([TINY], parallelism=1)


def test_multi_core_host_not_warned(monkeypatch):
    monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 8)
    monkeypatch.setattr(pool_module, "_thread_parallelism_warned", False)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        DevicePool([TINY], parallelism=4)
