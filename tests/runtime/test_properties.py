"""Property-based invariants of the runtime (hypothesis).

The three contracts the subsystem is built on:

1. an admitted job's resident footprint always fits the device that
   served it (or the job is spill-servable);
2. spill -> restore round-trips the architectural vector state
   bit-exactly, whatever registers and windows are involved;
3. the pool's makespan is exactly the max over the device timelines.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.engine.system import CAPEConfig, CAPESystem
from repro.runtime.context import ContextManager
from repro.runtime.job import Footprint, Job
from repro.runtime.pool import DevicePool

NANO = CAPEConfig(name="nano", num_chains=8)  # 256 lanes
SMALL = CAPEConfig(name="small", num_chains=32)  # 1,024 lanes


def sum_job(lanes, resident, priority=0):
    def body(system):
        vl = min(lanes, system.config.max_vl)
        system.vsetvl(vl)
        system.vmv_vx(1, 2)
        return int(system.vredsum(1, signed=False))

    return Job(
        f"j{lanes}",
        body,
        Footprint(lanes=lanes, resident=resident),
        priority=priority,
        validate=lambda out: out > 0,
    )


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(1, 1024),  # lanes
            st.booleans(),  # resident
            st.integers(-1, 1),  # priority
        ),
        min_size=1,
        max_size=8,
    ),
    st.sampled_from(["fifo", "sjf", "best-fit"]),
    st.booleans(),
)
def test_admitted_jobs_fit_their_device(specs, policy, stealing):
    pool = DevicePool(
        (NANO, SMALL),
        policy=policy,
        work_stealing=stealing,
        memory_bytes=1 << 22,
    )
    jobs = [sum_job(lanes, resident, priority) for lanes, resident, priority in specs]
    pool.submit_stream(jobs, interarrival_cycles=100.0)
    report = pool.run()
    assert report.completed == len(jobs)
    by_id = {d.device_id: d for d in pool.devices}
    for job in jobs:
        device = by_id[job.device_id]
        assert job.footprint.fits(device.config) or job.spillable


@settings(max_examples=25, deadline=None)
@given(
    st.integers(1, 256),  # vl
    st.lists(st.integers(0, 7), min_size=1, max_size=4),  # registers
    st.integers(0, 2**32 - 1),  # fill seed value
)
def test_spill_restore_is_bit_exact(vl, regs, seed):
    cape = CAPESystem(NANO)
    cape.vsetvl(vl)
    rng = np.random.default_rng(seed)
    saved = {}
    for r in set(regs):
        v = rng.integers(0, 1 << 32, size=vl, dtype=np.int64)
        cape.vregs[r, :vl] = v
        saved[r] = v.copy()
    manager = ContextManager(cape)
    manager.spill("ctx", regs)
    cape.vsetvl(cape.config.max_vl)
    cape.vregs[:] = -1
    manager.restore("ctx")
    assert cape.vl == vl
    for r, v in saved.items():
        np.testing.assert_array_equal(cape.vregs[r, :vl], v)


@settings(max_examples=15, deadline=None)
@given(
    st.lists(st.integers(1, 256), min_size=1, max_size=10),
    st.floats(0.0, 500.0),
)
def test_makespan_is_max_over_device_timelines(lane_list, interarrival):
    pool = DevicePool((NANO, NANO, SMALL), memory_bytes=1 << 22)
    jobs = [sum_job(lanes, resident=True) for lanes in lane_list]
    pool.submit_stream(jobs, interarrival_cycles=interarrival)
    report = pool.run()
    per_device_end = {}
    for job in jobs:
        per_device_end[job.device_id] = max(
            per_device_end.get(job.device_id, 0.0), job.finish_cycle
        )
    assert report.makespan_cycles == max(per_device_end.values())
    assert report.makespan_cycles == max(d.busy_until for d in pool.devices)
