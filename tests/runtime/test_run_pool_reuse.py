"""api.run_pool(pool=...): reuse a pool, keep its caches warm."""

import numpy as np
import pytest

from repro.api import ConfigError, run_pool
from repro.engine.system import CAPEConfig
from repro.obs import Observer
from repro.plan import PlanCache
from repro.runtime import DevicePool, Footprint, Job

TINY = CAPEConfig(name="tiny", num_chains=64)


def vadd_jobs(n=3):
    def body(system):
        data = np.arange(8, dtype=np.int64)
        system.vsetvl(8)
        system.memory.write_words(0x1000, data)
        system.memory.write_words(0x1040, data + 1)
        system.vle(1, 0x1000)
        system.vle(2, 0x1040)
        system.vadd(3, 1, 2)
        return int(system.vredsum(3, signed=False))

    return [
        Job(f"vadd{i}", body=body, footprint=Footprint(lanes=8))
        for i in range(n)
    ]


def test_pool_reuse_hits_the_warm_plan_cache():
    observer = Observer()
    pool = DevicePool(
        [TINY], backend="bitplane", observer=observer,
        plan_cache=PlanCache(),
    )
    # The pool publishes per-device: the series carries a device label.
    hit_counter = observer.metrics.counter("plan.cache.hit", device="tiny#0")

    report1 = run_pool(vadd_jobs(), pool=pool)
    hits_after_first = hit_counter.value
    report2 = run_pool(vadd_jobs(), pool=pool)

    assert report1.as_dict()["jobs"] and report2.as_dict()["jobs"]
    # Second batch re-uses plans the first batch compiled: hits rise.
    assert hit_counter.value > hits_after_first


def test_reused_pool_continues_the_clock():
    pool = DevicePool([TINY])
    run_pool(vadd_jobs(2), pool=pool, interarrival_cycles=10.0)
    first_end = pool.clock.now
    run_pool(vadd_jobs(2), pool=pool)
    assert pool.clock.now >= first_end


def test_construction_kwargs_conflict_with_pool():
    pool = DevicePool([TINY])
    with pytest.raises(ConfigError, match="pool="):
        run_pool(vadd_jobs(1), pool=pool, policy="sjf")
    with pytest.raises(ConfigError, match="pool="):
        run_pool(vadd_jobs(1), pool=pool, observer=Observer())
