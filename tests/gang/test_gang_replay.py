"""Differential tests: one stacked gang replay vs K sequential runs.

The gang contract is total equivalence: for every member, the job
output, the full architectural register file, cycle and energy totals,
and every ``csb.microops`` series must be bit-identical to executing
the same job alone on its own device — including masked forms,
heterogeneous vector lengths, reductions, and mask popcounts. A member
whose stacked mirror diverges mid-gang is ejected and re-run
sequentially without poisoning its peers.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.engine.system import CAPEConfig, CAPESystem
from repro.gang import (
    GANG_MODES,
    GangReplay,
    ineligible_reason,
    resolve_gang_mode,
    run_ganged,
)
from repro.obs import Observer
from repro.runtime.job import Footprint, Job

NANO = CAPEConfig(name="nano", num_chains=8)  # 256 lanes

#: op -> accepts mask=; masked vmul falls back to re-sync and is
#: covered through the unmasked entry (same split as the plan tests).
OPS = (
    ("vadd", True),
    ("vsub", True),
    ("vmul", False),
    ("vand", True),
    ("vor", True),
    ("vxor", True),
)

_BASE = 0x1000


def _load(system, vreg, data, slot):
    data = np.asarray(data, dtype=np.int64)
    addr = _BASE + slot * 4 * len(data)
    system.memory.write_words(addr, data)
    system.vle(vreg, addr)


def gang_body(program, vl, seed):
    """A job body: load member-specific data, run the shared program.

    The *structure* (op sequence, registers, scalars — here none) is
    shared across members so their traces group into one gang; the
    data and the vector length are member-specific.
    """

    def body(system):
        rng = np.random.default_rng(seed)
        system.vsetvl(vl)
        _load(system, 1, rng.integers(0, 1 << 20, vl), 0)
        _load(system, 2, rng.integers(0, 1 << 20, vl), 1)
        _load(system, 6, rng.integers(0, 2, vl), 2)
        for i, (op, use_mask) in enumerate(program):
            maskable = next(m for o, m in OPS if o == op)
            kwargs = {"mask": 6} if (use_mask and maskable) else {}
            getattr(system, op)(3 + (i % 3), 1, 2, **kwargs)
        system.vmseq(7, 1, 2)
        return (
            int(system.vredsum(3, signed=False)),
            int(system.vmask_popcount(7)),
        )

    return body


def build_entries(program, members):
    entries = []
    for k, (vl, seed) in enumerate(members):
        system = CAPESystem(NANO, backend="bitplane", observer=Observer())
        job = Job(
            f"m{k}", gang_body(program, vl, seed), Footprint(lanes=vl)
        )
        entries.append((system, job))
    return entries


def snapshot(entries):
    snaps = []
    for system, job in entries:
        snaps.append({
            "output": job.result.output,
            "error": job.result.error,
            "cycles": job.result.service_cycles,
            "energy": job.result.energy_j,
            "registers": [system.read_vreg(r).tolist() for r in range(8)],
            "microops": {
                key: value
                for key, value in system.observer.metrics.snapshot().items()
                if key[0] == "csb.microops"
            },
        })
    return snaps


def run_sequential(program, members):
    entries = build_entries(program, members)
    for system, job in entries:
        system.reset()
        job.result = job.execute(system)
    return snapshot(entries)


def run_gang(program, members, mode=True):
    entries = build_entries(program, members)
    outcomes = run_ganged(entries, mode=mode)
    return snapshot(entries), outcomes


@settings(max_examples=10, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from([op for op, _ in OPS]), st.booleans()),
        min_size=1,
        max_size=4,
    ),
    st.lists(
        st.tuples(st.integers(1, 256), st.integers(0, 2**16)),
        min_size=2,
        max_size=5,
    ),
)
def test_gang_replay_bit_identical_to_sequential(program, members):
    seq = run_sequential(program, members)
    gang, outcomes = run_gang(program, members)
    assert gang == seq
    assert all(o.ganged and not o.ejected for o in outcomes)
    assert {o.gang_size for o in outcomes} == {len(members)}


def test_heterogeneous_vl_members_share_one_gang():
    program = [("vadd", True), ("vmul", False)]
    members = [(256, 1), (19, 2), (100, 3), (1, 4)]
    seq = run_sequential(program, members)
    gang, outcomes = run_gang(program, members)
    assert gang == seq
    assert all(o.gang_size == 4 for o in outcomes)


def test_structurally_different_jobs_split_into_groups():
    # Two program shapes in one batch: each gangs with its own kind.
    entries = build_entries([("vadd", False)], [(64, 1), (64, 2)])
    entries += build_entries([("vxor", True)], [(64, 3), (64, 4)])
    outcomes = run_ganged(entries)
    assert [o.gang_size for o in outcomes] == [2, 2, 2, 2]
    assert all(o.ganged for o in outcomes)


class TestModes:
    def test_modes_are_validated(self):
        assert resolve_gang_mode("auto") == "auto"
        with pytest.raises(ConfigError, match="gang must be"):
            resolve_gang_mode("yes")
        assert set(GANG_MODES) == {True, False, "auto"}

    def test_false_runs_everything_sequentially(self):
        program = [("vadd", False)]
        members = [(32, 1), (32, 2)]
        snaps, outcomes = run_gang(program, members, mode=False)
        assert snaps == run_sequential(program, members)
        assert all(
            not o.ganged and o.reason == "disabled" for o in outcomes
        )

    def test_auto_demotes_a_singleton(self):
        snaps, outcomes = run_gang([("vadd", False)], [(32, 1)], mode="auto")
        assert snaps == run_sequential([("vadd", False)], [(32, 1)])
        assert outcomes[0].reason == "singleton"
        assert not outcomes[0].ganged

    def test_true_gangs_a_singleton(self):
        snaps, outcomes = run_gang([("vadd", False)], [(32, 1)], mode=True)
        assert snaps == run_sequential([("vadd", False)], [(32, 1)])
        assert outcomes[0].ganged and outcomes[0].gang_size == 1


class TestEligibility:
    def test_reference_backend_job_is_ineligible(self):
        system = CAPESystem(NANO, backend="reference")
        job = Job("r", gang_body([("vadd", False)], 16, 1), Footprint(lanes=16))
        assert ineligible_reason(system, job) == "backend"

    def test_functional_only_device_is_ineligible(self):
        system = CAPESystem(NANO)
        job = Job("f", gang_body([("vadd", False)], 16, 1), Footprint(lanes=16))
        assert ineligible_reason(system, job) == "backend"

    def test_job_backend_override_wins(self):
        system = CAPESystem(NANO)  # functional-only device...
        job = Job(
            "b", gang_body([("vadd", False)], 16, 1),
            Footprint(lanes=16), backend="bitplane",
        )  # ...but the job brings its own mirror.
        assert ineligible_reason(system, job) is None

    def test_csb_faults_are_ineligible(self):
        from repro.faults import FaultInjector, FaultPlan, TagFlip

        injector = FaultInjector(
            FaultPlan([TagFlip(element=0, bit=0, at_search=1)])
        )
        system = CAPESystem(
            NANO, backend="bitplane", fault_injector=injector
        )
        job = Job("x", gang_body([("vadd", False)], 16, 1), Footprint(lanes=16))
        assert ineligible_reason(system, job) == "faults"

    def test_mixed_batch_gangs_only_the_eligible(self):
        entries = build_entries([("vadd", False)], [(64, 1), (64, 2)])
        ref_system = CAPESystem(NANO, backend="reference")
        ref_job = Job(
            "ref", gang_body([("vadd", False)], 64, 3), Footprint(lanes=64)
        )
        entries.append((ref_system, ref_job))
        obs = Observer()
        outcomes = run_ganged(entries, observer=obs)
        assert [o.ganged for o in outcomes] == [True, True, False]
        assert outcomes[2].reason == "backend"
        assert ref_job.result.error is None
        assert obs.metrics.total("gang.hit") == 2
        assert obs.metrics.total("gang.miss", reason="backend") == 1


class TestEjection:
    def _corrupting_hook(self, victim):
        fired = {"done": False}

        def hook(replay, index, kind):
            # Corrupt the victim's destination block right before the
            # sync that validates it: the batched check must catch it.
            if kind == "sync" and replay._pending and not fired["done"]:
                vd = replay._pending[0]
                replay.backend.bits[0, vd, replay.member_slice(victim)] ^= 1
                fired["done"] = True

        return hook, fired

    def test_mid_gang_divergence_ejects_only_the_victim(self):
        program = [("vadd", False), ("vmul", False), ("vxor", True)]
        members = [(64, s) for s in range(4)]
        seq = run_sequential(program, members)
        hook, fired = self._corrupting_hook(victim=2)
        obs = Observer()
        GangReplay.chaos_hook = hook
        try:
            entries = build_entries(program, members)
            outcomes = run_ganged(entries, observer=obs)
        finally:
            GangReplay.chaos_hook = None
        assert fired["done"]
        # Every member — ejected or not — ends bit-identical to solo.
        assert snapshot(entries) == seq
        assert [o.ejected for o in outcomes] == [False, False, True, False]
        assert [o.ganged for o in outcomes] == [True, True, False, True]
        assert outcomes[2].reason is not None
        assert obs.metrics.total("gang.ejected") == 1
        assert obs.metrics.total("gang.hit") == 3

    def test_tag_corruption_ejects_at_the_popcount(self):
        program = [("vand", False)]
        members = [(32, s) for s in range(3)]
        seq = run_sequential(program, members)
        fired = {"done": False}

        def hook(replay, index, kind):
            # Flip the mask register's bit-plane of member 0 right
            # before the popcount searches it: the count check ejects.
            if kind == "popcount" and not fired["done"]:
                vm = replay.members[0].trace[index][1]
                replay.backend.bits[0, vm, replay.member_slice(0)] ^= 1
                fired["done"] = True

        GangReplay.chaos_hook = hook
        try:
            entries = build_entries(program, members)
            outcomes = run_ganged(entries)
        finally:
            GangReplay.chaos_hook = None
        assert fired["done"]
        assert snapshot(entries) == seq
        assert outcomes[0].ejected and not outcomes[1].ejected
