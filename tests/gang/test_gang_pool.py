"""Gang execution through the pools: identity, metrics, fallbacks.

``DevicePool(gang=...)`` routes each launch batch through
:func:`repro.gang.run_ganged`; ``ServePool`` ships gang batches to its
worker processes. Either way the contract is the one the sequential
tier defines: results, placement, telemetry, and microop totals
bit-identical to ``gang=False``.
"""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.engine.system import CAPEConfig
from repro.gang import GangReplay
from repro.obs import Observer
from repro.runtime import DevicePool, ExecConfig
from repro.serve import JobSpec, ServePool

TINY = CAPEConfig(name="tiny", num_chains=64)

pytestmark = []


def dot_specs(n=8, lanes=8):
    return [
        JobSpec(
            f"dot{i}", "dot",
            {"x": np.arange(lanes) + i, "y": np.arange(lanes) + 1},
            lanes=lanes,
        )
        for i in range(n)
    ]


def run_device_pool(specs, observer=None, configs=(TINY, TINY), **kwargs):
    pool = DevicePool(
        configs, backend="bitplane", observer=observer, **kwargs
    )
    jobs = [spec.to_job() for spec in specs]
    for job in jobs:
        pool.submit(job)
    report = pool.run()
    return pool, jobs, report


def result_tuples(jobs):
    return [
        (
            j.name,
            j.result.output,
            j.result.service_cycles,
            j.result.energy_j,
            j.result.error,
        )
        for j in jobs
    ]


def microops(observer):
    return {
        key: value
        for key, value in observer.metrics.snapshot().items()
        if key[0] == "csb.microops"
    }


class TestDevicePoolIdentity:
    def test_all_gang_modes_match_sequential(self):
        specs = dot_specs()
        base_obs = Observer()
        _, base_jobs, base_report = run_device_pool(
            specs, observer=base_obs, gang=False
        )
        for knobs in (
            {"gang": True},
            {"gang": "auto"},
            {"exec": ExecConfig(gang=True)},
        ):
            obs = Observer()
            _, jobs, report = run_device_pool(specs, observer=obs, **knobs)
            assert result_tuples(jobs) == result_tuples(base_jobs)
            assert report.makespan_cycles == base_report.makespan_cycles
            assert microops(obs) == microops(base_obs)

    def test_gang_metrics_count_every_member(self):
        obs = Observer()
        run_device_pool(dot_specs(8), observer=obs, gang=True)
        assert obs.metrics.total("gang.hit") == 8
        assert obs.metrics.total("gang.miss") == 0
        assert obs.metrics.total("gang.ejected") == 0

    def test_reference_backend_job_takes_the_sequential_path(self):
        specs = dot_specs(4)
        ref = JobSpec(
            "ref", "dot",
            {"x": np.arange(8), "y": np.arange(8) + 1},
            lanes=8, backend="reference",
        )
        obs = Observer()
        _, jobs, _ = run_device_pool(specs + [ref], observer=obs, gang=True)
        base_obs = Observer()
        _, base_jobs, _ = run_device_pool(
            specs + [ref], observer=base_obs, gang=False
        )
        assert result_tuples(jobs) == result_tuples(base_jobs)
        assert obs.metrics.total("gang.miss", reason="backend") == 1
        assert obs.metrics.total("gang.hit") == 4

    def test_auto_mode_demotes_single_device_batches(self):
        # One device => every launch batch is a singleton => "auto"
        # never gangs, but the results are the sequential results.
        specs = dot_specs(4)
        obs = Observer()
        _, jobs, _ = run_device_pool(
            specs, observer=obs, configs=(TINY,), gang="auto"
        )
        _, base_jobs, _ = run_device_pool(specs, configs=(TINY,), gang=False)
        assert result_tuples(jobs) == result_tuples(base_jobs)
        assert obs.metrics.total("gang.hit") == 0
        assert obs.metrics.total("gang.miss", reason="singleton") == 4

    def test_mid_gang_ejection_heals_through_the_sequential_path(self):
        specs = dot_specs(6)
        _, base_jobs, _ = run_device_pool(specs, gang=False)
        fired = {"count": 0}

        def hook(replay, index, kind):
            # Corrupt the first member's destination ahead of its
            # validating sync, once per pool run (first gang only).
            if kind == "sync" and replay._pending and fired["count"] == 0:
                vd = replay._pending[0]
                replay.backend.bits[0, vd, replay.member_slice(0)] ^= 1
                fired["count"] += 1

        obs = Observer()
        GangReplay.chaos_hook = hook
        try:
            _, jobs, _ = run_device_pool(specs, observer=obs, gang=True)
        finally:
            GangReplay.chaos_hook = None
        assert fired["count"] == 1
        assert result_tuples(jobs) == result_tuples(base_jobs)
        assert obs.metrics.total("gang.ejected") == 1
        assert obs.metrics.total("gang.miss", reason="ejected") == 1
        assert obs.metrics.total("gang.hit") == 5


class TestExecConfigWiring:
    def test_exec_config_sets_the_pool_knobs(self):
        from repro.runtime import ThreadParallelismWarning

        with pytest.warns(ThreadParallelismWarning):
            pool = DevicePool(
                (TINY,), exec=ExecConfig(parallelism=2, gang=True)
            )
        assert pool.gang is True
        assert pool.parallelism == 2

    def test_exec_config_defaults_to_auto_gang(self):
        pool = DevicePool((TINY,), exec=ExecConfig())
        assert pool.gang == "auto"

    def test_legacy_keywords_still_work_without_exec(self):
        pool = DevicePool((TINY,), gang=True)
        assert pool.gang is True
        assert DevicePool((TINY,)).gang is False

    def test_conflicting_knobs_are_rejected(self):
        with pytest.raises(ConfigError, match="inside ExecConfig"):
            DevicePool((TINY,), gang=True, exec=ExecConfig())
        with pytest.raises(ConfigError, match="inside ExecConfig"):
            DevicePool((TINY,), parallelism=4, exec=ExecConfig(gang=True))

    def test_bad_gang_mode_is_rejected_everywhere(self):
        with pytest.raises(ConfigError, match="gang must be"):
            DevicePool((TINY,), gang="always")
        with pytest.raises(ConfigError, match="gang must be"):
            ExecConfig(gang="always")

    def test_exec_config_validates_counts(self):
        with pytest.raises(ConfigError):
            ExecConfig(parallelism=0)
        with pytest.raises(ConfigError):
            ExecConfig(workers=0)


class TestServePoolGang:
    def test_served_gang_matches_sequential(self):
        specs = dot_specs(8)
        _, base_jobs, _ = run_device_pool(specs, gang=False)
        obs = Observer()
        pool = ServePool(
            (TINY, TINY), workers=2, backend="bitplane",
            observer=obs, gang=True,
        )
        jobs = pool.submit_specs(specs)
        pool.run()
        assert result_tuples(jobs) == result_tuples(base_jobs)
        assert obs.metrics.total("gang.hit") == 8

    def test_serve_exec_config_conflict_rejected(self):
        with pytest.raises(ConfigError, match="inside ExecConfig"):
            ServePool((TINY,), gang=True, exec=ExecConfig())
