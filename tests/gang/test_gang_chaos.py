"""Gangs under chaos: fault storms, worker kills, gateway failover.

Gang execution must never weaken the self-healing ladder: devices with
live CSB faults are ineligible and heal sequentially, a worker killed
mid-gang strands the whole batch onto survivors, and a gateway retries
gang orphans exactly like single-request orphans. Everything here
compares against the equivalent fault-free or gang-free run.
"""

import asyncio

import numpy as np
import pytest

from repro.engine.system import CAPEConfig
from repro.faults import FaultPlan, WorkerKill
from repro.obs import Observer
from repro.runtime.job import Footprint, Job
from repro.runtime.pool import DevicePool
from repro.serve import Gateway, JobSpec, ServeConfig, ServePool

NANO = CAPEConfig(name="nano", num_chains=8)  # 256 lanes
TINY = CAPEConfig(name="tiny", num_chains=64)

pytestmark = pytest.mark.slow


def make_jobs(n=30):
    """Bit-plane jobs with a gang-friendly shape (no per-job scalars)."""
    jobs = []
    for i in range(n):
        rng = np.random.default_rng(2000 + i)
        data = rng.integers(0, 1 << 20, size=64).astype(np.int64)

        def body(system, data=data):
            system.memory.write_words(0x1000, data)
            system.vsetvl(64)
            system.vle(1, 0x1000)
            system.vadd(2, 1, 1)
            system.vmul(3, 2, 1)
            return int(system.vredsum(3, signed=False))

        golden = int((2 * data * data).sum())
        jobs.append(
            Job(f"job{i:02d}", body, Footprint(lanes=64, resident=True),
                golden=golden, backend="bitplane")
        )
    return jobs


def run_stream(gang, fault_plan=None, observer=None):
    pool = DevicePool(
        (NANO, NANO, NANO),
        memory_bytes=1 << 26,
        fault_plan=fault_plan,
        observer=observer,
        failure_threshold=2,
        quarantine_cycles=2_000.0,
        retry_backoff_cycles=300.0,
        max_retries=4,
        gang=gang,
    )
    jobs = pool.submit_stream(make_jobs(), interarrival_cycles=40.0)
    report = pool.run(max_events=100_000)
    return pool, jobs, report


def fingerprint(jobs, report):
    return (
        [(r.name, r.state, r.attempts, r.device_id,
          r.start_cycle, r.finish_cycle) for r in report.jobs],
        report.completed,
        report.failed,
        report.retries,
        report.quarantines,
        report.device_deaths,
        report.makespan_cycles,
        [j.result.output for j in jobs],
    )


def chaos_plan():
    return FaultPlan.chaos(seed=0xCA9E, devices=3, kill_cycle=3_000.0)


class TestDevicePoolChaos:
    def test_chaos_stream_identical_with_gangs_enabled(self):
        """The full seeded storm with gang=True: faulty devices drop to
        the sequential healing ladder (ineligible, never ganged), and
        every observable matches the gang=False replay of the same
        storm."""
        _, seq_jobs, seq_report = run_stream(False, fault_plan=chaos_plan())
        obs = Observer()
        _, jobs, report = run_stream(
            True, fault_plan=chaos_plan(), observer=obs
        )
        assert fingerprint(jobs, report) == fingerprint(seq_jobs, seq_report)
        # Whatever the storm failed, it failed identically in both runs;
        # everything else completed.
        assert report.completed + report.failed == len(jobs)
        # The storm gated some members out of gangs...
        assert obs.metrics.total("gang.miss", reason="faults") > 0
        # ...but healthy devices kept ganging through it.
        assert obs.metrics.total("gang.hit") > 0

    def test_fault_free_gang_stream_matches_sequential(self):
        _, seq_jobs, seq_report = run_stream(False)
        _, jobs, report = run_stream(True)
        assert fingerprint(jobs, report) == fingerprint(seq_jobs, seq_report)


class TestServePoolGangHealing:
    def _specs(self, n=12):
        return [
            JobSpec(
                f"dot{i}", "dot",
                {"x": np.arange(16) + i, "y": np.arange(16) + 1},
                lanes=16,
            )
            for i in range(n)
        ]

    def _run(self, fault_plan=None, gang=True, workers=3):
        pool = ServePool(
            [TINY, TINY, TINY], workers=workers, backend="bitplane",
            fault_plan=fault_plan, gang=gang,
        )
        jobs = pool.submit_specs(self._specs(), interarrival_cycles=10.0)
        report = pool.run()
        return pool, jobs, report

    def test_worker_kill_mid_gang_completes_all_jobs(self):
        """A worker dies *before executing* a gang batch it was sent:
        the whole batch fails over like a crash and re-places on the
        survivors, outputs identical to the fault-free run."""
        _, ref_jobs, _ = self._run()
        plan = FaultPlan(faults=(WorkerKill(at_job=2, worker=1),))
        pool, jobs, _ = self._run(fault_plan=plan)
        assert all(j.result is not None for j in jobs)
        assert {j.name: j.result.output for j in jobs} == {
            j.name: j.result.output for j in ref_jobs
        }
        dead = [d for d in pool.devices if d.health.state.name == "DEAD"]
        assert [d.device_id for d in dead] == [1]


class TestGatewayGang:
    def _spec(self, name, i):
        return JobSpec(
            name, "dot", {"x": np.arange(8) + i, "y": np.arange(8)}, lanes=8
        )

    def _golden(self, i):
        return int(((np.arange(8) + i) * np.arange(8)).sum())

    def test_gateway_gang_results_match_gang_free(self):
        def serve_all(gang, observer=None):
            async def main():
                cfg = ServeConfig(
                    configs=(TINY, TINY), workers=2,
                    backend="bitplane", gang=gang,
                )
                async with Gateway(cfg, observer=observer) as gw:
                    return await asyncio.gather(
                        *(gw.submit_retrying(self._spec(f"r{i}", i))
                          for i in range(10))
                    )

            return asyncio.run(main())

        obs = Observer()
        ganged = serve_all(True, observer=obs)
        plain = serve_all(False)
        assert [r.output for r in ganged] == [r.output for r in plain]
        assert [r.output for r in ganged] == [
            self._golden(i) for i in range(10)
        ]
        assert obs.metrics.total("gang.hit") == 10

    def test_gateway_gang_worker_death_retries_orphans(self):
        async def main():
            cfg = ServeConfig(
                configs=(TINY, TINY), workers=2,
                backend="bitplane", gang=True,
                fault_plan=FaultPlan(faults=(WorkerKill(at_job=2, worker=0),)),
            )
            async with Gateway(cfg) as gw:
                results = await asyncio.gather(
                    *(gw.submit_retrying(self._spec(f"r{i}", i))
                      for i in range(8))
                )
                return results, gw.report()

        results, report = asyncio.run(main())
        assert [r.output for r in results] == [
            self._golden(i) for i in range(8)
        ]
        assert report.worker_deaths == 1
        assert report.retries >= 1
