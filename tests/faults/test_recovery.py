"""Engine-level detection and repair under injected faults.

Every scenario runs real microcode on a faulty bit-level CSB and checks
the architectural results still match the functional model — the
recovery ladder (retry, spare-chain remap, functional fallback) absorbs
the injected faults.
"""

import numpy as np
import pytest

from repro.common.errors import DeviceFailedError, SpillCorruptionError
from repro.engine.system import CAPEConfig, CAPESystem
from repro.faults import (
    ChainKill,
    DeviceKill,
    FaultInjector,
    FaultPlan,
    StuckBit,
    TagFlip,
    TransferFault,
)
from repro.obs import Observer
from repro.runtime.context import ContextManager

NANO = CAPEConfig(name="nano", num_chains=8)  # 256 lanes


def faulty_system(faults, backend="bitplane", observer=None, **kwargs):
    injector = FaultInjector(FaultPlan(faults), **kwargs)
    system = CAPESystem(
        NANO, backend=backend, observer=observer, fault_injector=injector
    )
    return system, injector


def test_transient_tag_flip_heals_by_retry():
    obs = Observer()
    system, injector = faulty_system(
        [TagFlip(element=3, bit=0, at_search=2)], observer=obs
    )
    system.vsetvl(16)
    system.vmv_vx(1, 7)
    system.vmv_vx(2, 5)
    system.vadd(3, 1, 2)
    assert (system.read_vreg(3)[:16] == 12).all()
    assert injector.injected["tag_flip"] == 1
    assert obs.metrics.value("faults.injected", kind="tag_flip") == 1
    assert obs.metrics.value("faults.detected", kind="divergence") >= 1
    repaired = (
        obs.metrics.value("faults.repaired", kind="retry")
        + obs.metrics.value("faults.repaired", kind="remap")
        + obs.metrics.value("faults.repaired", kind="fallback")
    )
    assert repaired >= 1


def test_tag_flip_heals_on_reference_backend_too():
    system, injector = faulty_system(
        [TagFlip(element=3, bit=0, at_search=1)], backend="reference"
    )
    system.vsetvl(16)
    system.vmv_vx(1, 7)
    system.vmv_vx(2, 7)
    system.vmseq(3, 1, 2)  # compares search the CSB on the reference path
    assert (system.read_vreg(3)[:16] == 1).all()
    assert injector.injected["tag_flip"] == 1


def test_stuck_bit_is_retired_onto_a_spare_chain():
    system, injector = faulty_system([StuckBit(row=1, element=5, bit=2, value=1)])
    system.vsetvl(16)
    system.vmv_vx(1, 0)
    system.vadd(2, 1, 1)
    assert (system.read_vreg(2)[:16] == 0).all()
    assert injector.injected["stuck_bit"] == 1
    # Element 5 lives on chain 5; the remap retired it onto a spare.
    assert 5 in injector.remapped
    # Once remapped, subsequent ops stay clean — the spare is good silicon.
    system.vmv_vx(3, 9)
    system.vadd(4, 3, 3)
    assert (system.read_vreg(4)[:16] == 18).all()


def test_chain_kills_beyond_spares_fall_back_functionally():
    system, injector = faulty_system(
        [ChainKill(chain=2), ChainKill(chain=3), ChainKill(chain=5)],
        spare_chains=2,
    )
    system.vsetvl(16)
    system.vmv_vx(1, 9)
    system.vadd(2, 1, 1)
    # Three dead chains, two spares: results are still correct (the
    # unrepairable chain is served by the functional fallback).
    assert (system.read_vreg(2)[:16] == 18).all()
    assert injector.spares_free == 0
    assert len(injector.remapped) == 2


def test_device_kill_raises_from_the_charging_path():
    system, injector = faulty_system([DeviceKill(at_cycle=10.0)], backend=None)
    system.vsetvl(256)
    with pytest.raises(DeviceFailedError):
        for _ in range(100):
            system.vmv_vx(1, 1)
            system.vadd(2, 1, 1)
    assert injector.dead
    # The device stays dead across reset: silicon does not heal.
    system.reset()
    with pytest.raises(DeviceFailedError):
        system.vmv_vx(1, 1)
        system.vadd(2, 1, 1)


def test_load_corruption_lands_in_the_loaded_register():
    system, injector = faulty_system(
        [TransferFault(kind="load", at_transfer=1, element=2, bit=4)],
        backend=None,
    )
    system.memory.write_words(0x1000, np.arange(8))
    system.vsetvl(8)
    system.vle(1, 0x1000)
    expected = np.arange(8)
    expected[2] ^= 1 << 4
    assert (system.read_vreg(1)[:8] == expected).all()
    assert injector.injected["transfer"] == 1


def test_corrupted_spill_slab_is_caught_by_parity_on_restore():
    obs = Observer()
    system, injector = faulty_system(
        [TransferFault(kind="spill", at_transfer=1, element=3, bit=9)],
        backend=None,
        observer=obs,
    )
    system.vsetvl(64)
    system.vmv_vx(1, 41)
    addr = 0x8000
    system.spill_vregs([1], addr, protect=True)
    with pytest.raises(SpillCorruptionError) as excinfo:
        system.fill_vregs([1], addr, protect=True)
    assert excinfo.value.addr == addr
    assert excinfo.value.bad_rows == (0,)
    assert obs.metrics.value("faults.detected", kind="spill_parity") == 1


def test_unprotected_spill_round_trips_without_parity_words():
    system = CAPESystem(NANO)
    system.vsetvl(32)
    system.vmv_vx(1, 7)
    system.spill_vregs([1], 0x4000)
    system.vmv_vx(1, 0)
    system.fill_vregs([1], 0x4000)
    assert (system.read_vreg(1)[:32] == 7).all()


def test_context_manager_auto_protects_under_a_live_plan():
    system, injector = faulty_system([DeviceKill(at_cycle=1e12)], backend=None)
    manager = ContextManager(system)
    assert manager.protect is True
    plain = ContextManager(CAPESystem(NANO))
    assert plain.protect is False


def test_recovered_run_matches_a_fault_free_run():
    def workload(system):
        system.vsetvl(64)
        system.vmv_vx(1, 3)
        system.vmv_vx(2, 4)
        system.vadd(3, 1, 2)
        system.vmul(4, 3, 1)
        system.vmseq(5, 3, 3)
        return (
            int(system.vredsum(4, signed=False)),
            list(system.read_vreg(3)[:64]),
        )

    clean = workload(CAPESystem(NANO, backend="bitplane"))
    faulty, injector = faulty_system([
        TagFlip(element=9, bit=1, at_search=3),
        StuckBit(row=3, element=17, bit=0, value=1),
        ChainKill(chain=6, at_op=5),
    ])
    healed = workload(faulty)
    assert healed == clean
    assert sum(injector.injected.values()) >= 2
