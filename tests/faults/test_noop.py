"""An empty FaultPlan is a true no-op.

The null-path guarantee: attaching an injector with no faults must leave
every observable identical to an injector-free run — results, cycle
counts, and the ``csb.microops`` counter families, on both execution
backends. Anything less means the fault hooks leak into fault-free runs.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.engine.system import CAPEConfig, CAPESystem
from repro.faults import FaultInjector, FaultPlan
from repro.obs import Observer

NANO = CAPEConfig(name="nano", num_chains=8)  # 256 lanes

OPS = ("vadd", "vsub", "vmul", "vand", "vor", "vxor", "vmin", "vmax")


def run_program(backend, injector, values_a, values_b, ops):
    obs = Observer()
    system = CAPESystem(
        NANO, backend=backend, observer=obs, fault_injector=injector
    )
    n = len(values_a)
    system.vsetvl(n)
    system.vregs[1, :n] = values_a
    system.vregs[2, :n] = values_b
    system._written_vregs.update({1, 2})
    if system._bitengine is not None:
        system._bitengine.sync_register(1, system.vregs[1])
        system._bitengine.sync_register(2, system.vregs[2])
    for i, op in enumerate(ops):
        getattr(system, op)(3 + (i % 4), 1, 2)
    system.vmseq(7, 1, 2)
    total = int(system.vredsum(3, signed=False))
    registers = [system.read_vreg(r).tolist() for r in range(8)]
    microops = {
        key: value
        for key, value in obs.metrics.snapshot().items()
        if key[0] == "csb.microops"
    }
    return {
        "total": total,
        "registers": registers,
        "cycles": system.stats.cycles,
        "energy": system.stats.energy_j,
        "microops": microops,
    }


@settings(max_examples=10, deadline=None)
@given(
    st.lists(st.integers(0, 2**32 - 1), min_size=4, max_size=32),
    st.lists(st.integers(0, 2**32 - 1), min_size=4, max_size=32),
    st.lists(st.sampled_from(OPS), min_size=1, max_size=6),
    st.sampled_from(["reference", "bitplane"]),
)
def test_empty_plan_is_bit_identical_to_no_injector(a, b, ops, backend):
    n = min(len(a), len(b))
    a, b = a[:n], b[:n]
    bare = run_program(backend, None, a, b, ops)
    nulled = run_program(backend, FaultInjector(FaultPlan()), a, b, ops)
    assert nulled == bare


def test_empty_plan_noop_covers_memory_and_spill_paths():
    def drive(injector):
        system = CAPESystem(NANO, fault_injector=injector)
        system.memory.write_words(0x1000, np.arange(64))
        system.vsetvl(64)
        system.vle(1, 0x1000)
        system.vadd(2, 1, 1)
        system.vse(2, 0x2000)
        system.spill_vregs([1, 2], 0x4000)
        system.vmv_vx(1, 0)
        system.fill_vregs([1, 2], 0x4000)
        return (
            system.read_vreg(1).tolist(),
            system.memory.read_words(0x2000, 64).tolist(),
            system.stats.cycles,
            system.stats.memory_cycles,
            system.stats.energy_j,
        )

    assert drive(FaultInjector(FaultPlan())) == drive(None)
