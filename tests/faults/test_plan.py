"""Fault plans: validation, device projection, seeded chaos."""

import pytest

from repro.common.errors import FaultInjectionError
from repro.faults import (
    ChainKill,
    DeviceKill,
    FaultPlan,
    StuckBit,
    TagFlip,
    TransferFault,
)


def test_empty_plan_is_empty():
    plan = FaultPlan()
    assert plan.empty
    assert len(plan) == 0
    assert plan.for_device(0).empty


def test_plan_validates_on_construction():
    with pytest.raises(FaultInjectionError):
        FaultPlan([StuckBit(row=0, element=0, bit=0, value=2)])
    with pytest.raises(FaultInjectionError):
        FaultPlan([TagFlip(element=0, bit=0, at_search=0)])
    with pytest.raises(FaultInjectionError):
        FaultPlan([ChainKill(chain=-1)])
    with pytest.raises(FaultInjectionError):
        FaultPlan([TransferFault(kind="dma", at_transfer=1, element=0, bit=0)])
    with pytest.raises(FaultInjectionError):
        FaultPlan([TransferFault(kind="load", at_transfer=1, element=0, bit=64)])
    with pytest.raises(FaultInjectionError):
        FaultPlan([DeviceKill(at_cycle=-1.0)])
    with pytest.raises(FaultInjectionError):
        FaultPlan(["not a fault"])


def test_for_device_keeps_broadcast_and_own_faults():
    plan = FaultPlan([
        DeviceKill(at_cycle=100.0, device=0),
        TagFlip(element=1, bit=0, at_search=1, device=1),
        TransferFault(kind="spill", at_transfer=1, element=0, bit=3),
    ])
    d0 = plan.for_device(0)
    assert len(d0) == 2  # its own kill + the broadcast spill fault
    assert len(d0.of_type(DeviceKill)) == 1
    assert len(d0.of_type(TagFlip)) == 0
    d1 = plan.for_device(1)
    assert len(d1.of_type(TagFlip)) == 1
    assert len(d1.of_type(DeviceKill)) == 0


def test_of_type_partitions_the_plan():
    plan = FaultPlan([
        StuckBit(row=1, element=2, bit=3, value=1),
        TagFlip(element=0, bit=0, at_search=5),
    ])
    assert len(plan.of_type(StuckBit)) == 1
    assert len(plan.of_type(TagFlip)) == 1
    assert len(plan.of_type(ChainKill)) == 0


def test_chaos_is_deterministic_from_the_seed():
    a = FaultPlan.chaos(seed=2026, devices=3)
    b = FaultPlan.chaos(seed=2026, devices=3)
    assert a == b
    assert a.faults == b.faults
    assert a.seed == 2026
    c = FaultPlan.chaos(seed=2027, devices=3)
    assert a != c


def test_chaos_covers_the_taxonomy():
    plan = FaultPlan.chaos(seed=7, devices=3, kill_cycle=120_000.0)
    kills = plan.of_type(DeviceKill)
    assert len(kills) == 1 and kills[0].at_cycle == 120_000.0
    assert len(plan.of_type(TransferFault)) >= 2  # flips + spill fault
    assert len(plan.of_type(StuckBit)) == 2
    # The dead, flaky, and marginal devices are distinct with 3 devices.
    victims = {kills[0].device}
    victims.update(f.device for f in plan.of_type(TransferFault)
                   if f.kind == "load")
    victims.update(s.device for s in plan.of_type(StuckBit))
    assert len(victims) == 3


def test_chaos_single_device_folds_victims():
    plan = FaultPlan.chaos(seed=3, devices=1)
    for f in plan.faults:
        assert f.device in (0, None)


def test_as_dict_round_trips_fields():
    plan = FaultPlan([StuckBit(row=1, element=2, bit=3, value=0)], seed=9)
    d = plan.as_dict()
    assert d["seed"] == 9
    assert d["faults"][0] == {
        "kind": "StuckBit", "row": 1, "element": 2, "bit": 3,
        "value": 0, "device": None,
    }
