"""Fault plans: validation, device projection, seeded chaos."""

import pytest

from repro.common.errors import FaultInjectionError
from repro.faults import (
    ChainKill,
    DeviceKill,
    FaultPlan,
    ReplyDrop,
    ReplyGarble,
    SlowWorker,
    StuckBit,
    TagFlip,
    TransferFault,
    TransportSchedule,
    WorkerHang,
    WorkerKill,
)


def test_empty_plan_is_empty():
    plan = FaultPlan()
    assert plan.empty
    assert len(plan) == 0
    assert plan.for_device(0).empty


def test_plan_validates_on_construction():
    with pytest.raises(FaultInjectionError):
        FaultPlan([StuckBit(row=0, element=0, bit=0, value=2)])
    with pytest.raises(FaultInjectionError):
        FaultPlan([TagFlip(element=0, bit=0, at_search=0)])
    with pytest.raises(FaultInjectionError):
        FaultPlan([ChainKill(chain=-1)])
    with pytest.raises(FaultInjectionError):
        FaultPlan([TransferFault(kind="dma", at_transfer=1, element=0, bit=0)])
    with pytest.raises(FaultInjectionError):
        FaultPlan([TransferFault(kind="load", at_transfer=1, element=0, bit=64)])
    with pytest.raises(FaultInjectionError):
        FaultPlan([DeviceKill(at_cycle=-1.0)])
    with pytest.raises(FaultInjectionError):
        FaultPlan(["not a fault"])


def test_for_device_keeps_broadcast_and_own_faults():
    plan = FaultPlan([
        DeviceKill(at_cycle=100.0, device=0),
        TagFlip(element=1, bit=0, at_search=1, device=1),
        TransferFault(kind="spill", at_transfer=1, element=0, bit=3),
    ])
    d0 = plan.for_device(0)
    assert len(d0) == 2  # its own kill + the broadcast spill fault
    assert len(d0.of_type(DeviceKill)) == 1
    assert len(d0.of_type(TagFlip)) == 0
    d1 = plan.for_device(1)
    assert len(d1.of_type(TagFlip)) == 1
    assert len(d1.of_type(DeviceKill)) == 0


def test_of_type_partitions_the_plan():
    plan = FaultPlan([
        StuckBit(row=1, element=2, bit=3, value=1),
        TagFlip(element=0, bit=0, at_search=5),
    ])
    assert len(plan.of_type(StuckBit)) == 1
    assert len(plan.of_type(TagFlip)) == 1
    assert len(plan.of_type(ChainKill)) == 0


def test_chaos_is_deterministic_from_the_seed():
    a = FaultPlan.chaos(seed=2026, devices=3)
    b = FaultPlan.chaos(seed=2026, devices=3)
    assert a == b
    assert a.faults == b.faults
    assert a.seed == 2026
    c = FaultPlan.chaos(seed=2027, devices=3)
    assert a != c


def test_chaos_covers_the_taxonomy():
    plan = FaultPlan.chaos(seed=7, devices=3, kill_cycle=120_000.0)
    kills = plan.of_type(DeviceKill)
    assert len(kills) == 1 and kills[0].at_cycle == 120_000.0
    assert len(plan.of_type(TransferFault)) >= 2  # flips + spill fault
    assert len(plan.of_type(StuckBit)) == 2
    # The dead, flaky, and marginal devices are distinct with 3 devices.
    victims = {kills[0].device}
    victims.update(f.device for f in plan.of_type(TransferFault)
                   if f.kind == "load")
    victims.update(s.device for s in plan.of_type(StuckBit))
    assert len(victims) == 3


def test_chaos_single_device_folds_victims():
    plan = FaultPlan.chaos(seed=3, devices=1)
    for f in plan.faults:
        assert f.device in (0, None)


def test_as_dict_round_trips_fields():
    plan = FaultPlan([StuckBit(row=1, element=2, bit=3, value=0)], seed=9)
    d = plan.as_dict()
    assert d["seed"] == 9
    assert d["faults"][0] == {
        "kind": "StuckBit", "row": 1, "element": 2, "bit": 3,
        "value": 0, "device": None,
    }


# ----------------------------------------------------------------------
# The transport taxonomy (PR 9): process-scoped faults and their folds
# ----------------------------------------------------------------------


def test_transport_faults_validate_on_construction():
    with pytest.raises(FaultInjectionError):
        FaultPlan([WorkerHang(at_job=0)])
    with pytest.raises(FaultInjectionError):
        FaultPlan([SlowWorker(delay_s=0.0, at_jobs=(1,))])
    with pytest.raises(FaultInjectionError):
        FaultPlan([SlowWorker(delay_s=0.1, at_jobs=())])
    with pytest.raises(FaultInjectionError):
        FaultPlan([SlowWorker(delay_s=0.1, at_jobs=(0,))])
    with pytest.raises(FaultInjectionError):
        FaultPlan([ReplyDrop(at_job=-1)])
    with pytest.raises(FaultInjectionError):
        FaultPlan([ReplyGarble(at_job=0)])


def test_for_device_excludes_the_whole_transport_taxonomy():
    plan = FaultPlan([
        WorkerKill(at_job=3, worker=0),
        WorkerHang(at_job=2, worker=1),
        SlowWorker(delay_s=0.1, at_jobs=(1,), worker=0),
        ReplyDrop(at_job=4),
        ReplyGarble(at_job=5),
        StuckBit(row=0, element=0, bit=0, value=1, device=0),
    ])
    # Devices see only the substrate fault; the wire faults target a
    # serving process and must never reach a FaultInjector.
    assert len(plan.for_device(0)) == 1
    assert plan.for_device(1).empty


def test_transport_for_worker_folds_deterministically():
    plan = FaultPlan([
        WorkerHang(at_job=7, worker=0),
        WorkerHang(at_job=3, worker=0),   # earliest hang wins
        WorkerHang(at_job=2, worker=1),
        SlowWorker(delay_s=0.1, at_jobs=(2, 4), worker=0),
        SlowWorker(delay_s=0.3, at_jobs=(4,)),  # broadcast; max delay wins
        ReplyDrop(at_job=5, worker=0),
        ReplyDrop(at_job=6),              # broadcast
        ReplyGarble(at_job=8, worker=1),
        WorkerKill(at_job=9, worker=0),
    ])
    s0 = plan.transport_for_worker(0)
    assert s0.hang_at == 3
    assert s0.kill_at == 9
    assert s0.slow == {2: 0.1, 4: 0.3}
    assert s0.drop_at == {5, 6}
    assert s0.garble_at == frozenset()
    s1 = plan.transport_for_worker(1)
    assert s1.hang_at == 2
    assert s1.kill_at is None
    assert s1.slow == {4: 0.3}
    assert s1.drop_at == {6}
    assert s1.garble_at == {8}
    assert plan.transport_for_worker(2).slow == {4: 0.3}  # broadcasts only


def test_transport_schedule_empty():
    assert TransportSchedule().empty
    assert FaultPlan().transport_for_worker(0).empty
    assert not TransportSchedule(hang_at=1).empty


def test_transport_storm_is_deterministic_and_in_range():
    a = FaultPlan.transport_storm(41, workers=3, kills=1, max_job=6)
    b = FaultPlan.transport_storm(41, workers=3, kills=1, max_job=6)
    assert a == b
    assert a.seed == 41
    assert a != FaultPlan.transport_storm(42, workers=3, kills=1, max_job=6)
    kinds = {type(f) for f in a.faults}
    assert kinds == {WorkerHang, SlowWorker, ReplyDrop, ReplyGarble, WorkerKill}
    for f in a.faults:
        assert 0 <= f.worker < 3
        jobs = f.at_jobs if isinstance(f, SlowWorker) else (f.at_job,)
        assert all(1 <= j <= 6 for j in jobs)


def test_transport_faults_survive_as_dict():
    plan = FaultPlan([SlowWorker(delay_s=0.25, at_jobs=(1, 3), worker=2)])
    d = plan.as_dict()["faults"][0]
    assert d["kind"] == "SlowWorker"
    assert d["delay_s"] == 0.25
    assert d["at_jobs"] == (1, 3)
    assert d["worker"] == 2
