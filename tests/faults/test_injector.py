"""FaultInjector mechanics: counters, transfer corruption, remap budget."""

import numpy as np
import pytest

from repro.common.errors import DeviceFailedError, FaultInjectionError
from repro.faults import (
    ChainKill,
    DeviceKill,
    FaultInjector,
    FaultPlan,
    StuckBit,
    TagFlip,
    TransferFault,
)
from repro.memory.mainmem import WordMemory


def test_empty_plan_classifies_as_inert():
    inj = FaultInjector(FaultPlan())
    assert not inj.has_csb_faults
    assert not inj.protect_slabs
    inj.charge(1e9)  # no DeviceKill: never raises
    values = np.arange(8)
    assert inj.filter_transfer("load", values) is values


def test_any_live_plan_protects_slabs():
    inj = FaultInjector(FaultPlan([DeviceKill(at_cycle=1.0)]))
    assert inj.protect_slabs
    assert not inj.has_csb_faults  # a device kill needs no backend wrap


def test_charge_kills_at_threshold_and_stays_dead():
    inj = FaultInjector(FaultPlan([DeviceKill(at_cycle=100.0)]))
    inj.charge(99.0)
    assert not inj.dead
    with pytest.raises(DeviceFailedError):
        inj.charge(1.0)
    assert inj.dead
    with pytest.raises(DeviceFailedError):
        inj.charge(0.0)  # silicon stays dead
    assert inj.injected["device_kill"] == 1


def test_filter_transfer_flips_the_planned_bit_once():
    inj = FaultInjector(FaultPlan([
        TransferFault(kind="load", at_transfer=2, element=3, bit=4),
    ]))
    first = np.arange(8, dtype=np.int64)
    assert (inj.filter_transfer("load", first.copy()) == first).all()
    second = inj.filter_transfer("load", first.copy())
    expected = first.copy()
    expected[3] ^= 1 << 4
    assert (second == expected).all()
    # Consumed: the third transfer is clean again.
    third = inj.filter_transfer("load", first.copy())
    assert (third == first).all()
    assert inj.injected["transfer"] == 1


def test_filter_transfer_kinds_are_independent():
    inj = FaultInjector(FaultPlan([
        TransferFault(kind="store", at_transfer=1, element=0, bit=0),
    ]))
    values = np.zeros(4, dtype=np.int64)
    assert (inj.filter_transfer("load", values.copy()) == 0).all()
    corrupted = inj.filter_transfer("store", values.copy())
    assert corrupted[0] == 1


def test_corrupt_slab_flips_a_written_word():
    inj = FaultInjector(FaultPlan([
        TransferFault(kind="spill", at_transfer=1, element=2, bit=7),
    ]))
    mem = WordMemory(1 << 16)
    mem.write_words(0x100, np.arange(8))
    inj.corrupt_slab(mem, 0x100, 8)
    got = mem.read_words(0x100, 8)
    expected = np.arange(8)
    expected[2] ^= 1 << 7
    assert (got == expected).all()
    # One-shot: a second slab write is untouched.
    mem.write_words(0x200, np.arange(8))
    inj.corrupt_slab(mem, 0x200, 8)
    assert (mem.read_words(0x200, 8) == np.arange(8)).all()


def test_bind_csb_rejects_out_of_shape_faults():
    inj = FaultInjector(FaultPlan([
        StuckBit(row=99, element=0, bit=0, value=1),
    ]))
    with pytest.raises(FaultInjectionError):
        inj.bind_csb(num_chains=8, num_subarrays=32, num_rows=36,
                     total_cols=256)
    inj2 = FaultInjector(FaultPlan([ChainKill(chain=8)]))
    with pytest.raises(FaultInjectionError):
        inj2.bind_csb(num_chains=8, num_subarrays=32, num_rows=36,
                      total_cols=256)


def test_remap_budget_is_bounded_by_spares():
    inj = FaultInjector(FaultPlan([TagFlip(element=0, bit=0, at_search=1)]),
                        spare_chains=1)
    assert inj.remap_chain(3) is True
    assert inj.remap_chain(3) is True  # idempotent, costs nothing
    assert inj.spares_free == 0
    assert inj.remap_chain(5) is False  # budget spent
    assert inj.remapped == {3}


def test_faulty_chains_tracks_permanent_faults_only():
    inj = FaultInjector(FaultPlan([
        StuckBit(row=1, element=5, bit=0, value=1),   # chain 5 % 8
        ChainKill(chain=2, at_op=10),
        TagFlip(element=0, bit=0, at_search=1),       # transient: not listed
    ]))
    inj.bind_csb(num_chains=8, num_subarrays=32, num_rows=36, total_cols=256)
    assert inj.faulty_chains() == [5]  # kill not yet active
    inj.csb_ops = 10
    assert inj.faulty_chains() == [2, 5]
    inj.remap_chain(5)
    assert inj.faulty_chains() == [2]


def test_report_summarises_injection_state():
    inj = FaultInjector(FaultPlan([DeviceKill(at_cycle=10.0)]))
    with pytest.raises(DeviceFailedError):
        inj.charge(10.0)
    report = inj.report()
    assert report["dead"] is True
    assert report["injected"] == {"device_kill": 1}
    assert report["spares_free"] == 2
