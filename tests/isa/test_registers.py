"""Register name parsing."""

import pytest

from repro.common.errors import ConfigError
from repro.isa.registers import parse_vreg, parse_xreg, xreg_name


def test_numeric_names():
    assert parse_xreg("x0") == 0
    assert parse_xreg("x31") == 31
    assert parse_vreg("v0") == 0
    assert parse_vreg("v31") == 31


def test_abi_names():
    assert parse_xreg("zero") == 0
    assert parse_xreg("ra") == 1
    assert parse_xreg("sp") == 2
    assert parse_xreg("a0") == 10
    assert parse_xreg("t0") == 5
    assert parse_xreg("s11") == 27
    assert parse_xreg("fp") == parse_xreg("s0") == 8


def test_case_and_whitespace_tolerated():
    assert parse_xreg(" A0 ") == 10
    assert parse_vreg(" V3 ") == 3


@pytest.mark.parametrize("bad", ["x32", "v32", "y1", "a8", "", "v-1"])
def test_invalid_names_rejected(bad):
    with pytest.raises(ConfigError):
        parse_xreg(bad)
    with pytest.raises(ConfigError):
        parse_vreg(bad)


def test_xreg_name_round_trip():
    for i in range(32):
        assert parse_xreg(xreg_name(i)) == i
    with pytest.raises(ConfigError):
        xreg_name(32)
