"""Machine execution: scalar semantics, control flow, vector offload."""

import numpy as np
import pytest

from repro.engine.system import CAPEConfig, CAPESystem
from repro.isa.interpreter import Machine


def run(src, cape=None, **kwargs):
    machine = Machine(src, cape)
    result = machine.run(**kwargs)
    return machine, result


def test_arithmetic_and_halt():
    machine, result = run("""
        li a0, 6
        li a1, 7
        mul a2, a0, a1
        ecall
    """)
    assert result.halted == "ecall"
    assert machine.x[12] == 42


def test_loop_sums_1_to_10():
    machine, _ = run("""
        li a0, 10
        li a1, 0
    loop:
        add a1, a1, a0
        addi a0, a0, -1
        bne a0, zero, loop
        ecall
    """)
    assert machine.x[11] == 55


def test_memory_load_store():
    machine, _ = run("""
        li a0, 0x1000
        li a1, 1234
        sw a1, 0(a0)
        lw a2, 0(a0)
        ecall
    """)
    assert machine.x[12] == 1234


def test_lw_sign_extends():
    machine, _ = run("""
        li a0, 0x1000
        li a1, -1
        sw a1, 0(a0)
        lw a2, 0(a0)
        ecall
    """)
    assert machine.x[12] == -1


def test_function_call_and_return():
    machine, _ = run("""
        li a0, 5
        jal ra, double
        ecall
    double:
        add a0, a0, a0
        ret
    """)
    assert machine.x[10] == 10


def test_slt_and_branches():
    machine, _ = run("""
        li a0, -3
        li a1, 2
        slt a2, a0, a1
        sltu a3, a0, a1
        ecall
    """)
    assert machine.x[12] == 1  # signed: -3 < 2
    assert machine.x[13] == 0  # unsigned: huge > 2


def test_div_rem_semantics():
    machine, _ = run("""
        li a0, -7
        li a1, 2
        div a2, a0, a1
        rem a3, a0, a1
        ecall
    """)
    assert machine.x[12] == -3  # truncates toward zero
    assert machine.x[13] == -1


def test_step_limit():
    _, result = run("loop: j loop", max_steps=100)
    assert result.halted == "step-limit"


def test_fell_off_end():
    _, result = run("addi a0, zero, 1")
    assert result.halted == "fell-off-end"


def test_vector_program_end_to_end(rng):
    cape = CAPESystem(CAPEConfig(name="t", num_chains=64))
    a = rng.integers(0, 1000, size=300)
    b = rng.integers(0, 1000, size=300)
    cape.memory.write_words(0x10000, a)
    cape.memory.write_words(0x20000, b)
    machine, result = run("""
        li a0, 300
        li a1, 0x10000
        li a2, 0x20000
        li a3, 0x30000
    loop:
        vsetvli t0, a0, e32
        vle32.v v1, (a1)
        vle32.v v2, (a2)
        vadd.vv v3, v1, v2
        vse32.v v3, (a3)
        sub a0, a0, t0
        slli t1, t0, 2
        add a1, a1, t1
        add a2, a2, t1
        add a3, a3, t1
        bne a0, zero, loop
        ecall
    """, cape)
    assert result.halted == "ecall"
    assert cape.memory.read_words(0x30000, 300).tolist() == (a + b).tolist()
    assert result.vector_instructions > 0
    assert result.cycles > 0


def test_vsetvli_returns_granted_vl():
    cape = CAPESystem(CAPEConfig(name="t", num_chains=64))  # max_vl 2048
    machine, _ = run("""
        li a0, 100000
        vsetvli t0, a0, e32
        ecall
    """, cape)
    assert machine.x[5] == 2048


def test_vredsum_writes_element_zero(rng):
    cape = CAPESystem(CAPEConfig(name="t", num_chains=64))
    values = rng.integers(0, 100, size=50)
    cape.memory.write_words(0x1000, values)
    machine, _ = run("""
        li a0, 50
        li a1, 0x1000
        vsetvli t0, a0, e32
        vle32.v v1, (a1)
        vmv.v.x v0, zero
        vredsum.vs v2, v1, v0
        ecall
    """, cape)
    assert int(cape.vregs[2, 0]) == int(values.sum())


def test_vlrw_replica_in_assembly(rng):
    cape = CAPESystem(CAPEConfig(name="t", num_chains=64))
    chunk = rng.integers(0, 100, size=4)
    cape.memory.write_words(0x1000, chunk)
    machine, _ = run("""
        li a0, 12
        li a1, 0x1000
        li a2, 4
        vsetvli t0, a0, e32
        vlrw.v v1, a1, a2
        ecall
    """, cape)
    assert cape.read_vreg(1).tolist() == np.tile(chunk, 3).tolist()


def test_scalar_work_contributes_cycles():
    _, result = run("""
        li a0, 1000
    loop:
        addi a0, a0, -1
        bne a0, zero, loop
        ecall
    """)
    assert result.cycles > 0
    assert result.scalar_instructions > 2000
