"""Property-based fuzzing of the scalar interpreter against an oracle.

Random straight-line ALU programs are generated, executed through the
assembler -> encoder -> decoder -> interpreter pipeline, and checked
against a direct Python evaluation of the same operations.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.isa.interpreter import Machine

_MASK64 = (1 << 64) - 1


def _wrap(v):
    v &= _MASK64
    return v - (1 << 64) if v >> 63 else v

# Registers x5..x12 participate; x1..x4 are left alone (ra/sp conventions).
REGS = list(range(5, 13))

_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "slt": lambda a, b: int(a < b),
    "sltu": lambda a, b: int((a & _MASK64) < (b & _MASK64)),
}

op_strategy = st.tuples(
    st.sampled_from(sorted(_OPS)),
    st.sampled_from(REGS),
    st.sampled_from(REGS),
    st.sampled_from(REGS),
)

imm_strategy = st.tuples(
    st.just("addi"),
    st.sampled_from(REGS),
    st.sampled_from(REGS),
    st.integers(-2048, 2047),
)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.one_of(op_strategy, imm_strategy), min_size=1, max_size=25),
    st.lists(st.integers(-1000, 1000), min_size=8, max_size=8),
)
def test_alu_programs_match_oracle(program, seeds):
    # Oracle state.
    regs = {r: s for r, s in zip(REGS, seeds)}

    lines = [f"li x{r}, {v}" for r, v in regs.items()]
    for instr in program:
        if instr[0] == "addi":
            _, rd, rs1, imm = instr
            lines.append(f"addi x{rd}, x{rs1}, {imm}")
            regs[rd] = _wrap(regs[rs1] + imm)
        else:
            op, rd, rs1, rs2 = instr
            lines.append(f"{op} x{rd}, x{rs1}, x{rs2}")
            regs[rd] = _wrap(_OPS[op](regs[rs1], regs[rs2]))
    lines.append("ecall")

    machine = Machine("\n".join(lines))
    result = machine.run()
    assert result.halted == "ecall"
    for r, expected in regs.items():
        assert machine.x[r] == expected, f"x{r}"


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.integers(0, 63), min_size=1, max_size=10),
    st.integers(-(2**31), 2**31 - 1),
)
def test_shift_programs_match_oracle(shifts, seed):
    value = seed
    lines = [f"li x5, {seed}"]
    for i, shamt in enumerate(shifts):
        kind = ("slli", "srli", "srai")[i % 3]
        lines.append(f"{kind} x5, x5, {shamt}")
        if kind == "slli":
            value = _wrap(value << shamt)
        elif kind == "srli":
            value = _wrap((value & _MASK64) >> shamt)
        else:
            value = _wrap(value >> shamt)
    lines.append("ecall")
    machine = Machine("\n".join(lines))
    machine.run()
    assert machine.x[5] == value
