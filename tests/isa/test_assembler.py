"""Two-pass assembler: labels, pseudo-instructions, error reporting."""

import pytest

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.encoding import decode


def mnemonics(words):
    return [decode(w).mnemonic for w in words]


def test_basic_program_assembles():
    words = assemble("""
        addi a0, zero, 5
        add a1, a0, a0
        ecall
    """)
    assert mnemonics(words) == ["addi", "add", "ecall"]


def test_comments_and_blank_lines_ignored():
    words = assemble("""
        # a comment
        addi a0, zero, 1   # trailing comment

        ecall
    """)
    assert len(words) == 2


def test_labels_resolve_backward_and_forward():
    words = assemble("""
        j end
    loop:
        addi a0, a0, -1
        bne a0, zero, loop
    end:
        ecall
    """)
    decoded = [decode(w) for w in words]
    assert decoded[0].mnemonic == "jal"
    assert decoded[0].fields["imm"] == 12  # to `end` at 0xc
    assert decoded[2].fields["imm"] == -4  # back to `loop`


def test_label_on_same_line_as_instruction():
    words = assemble("loop: addi a0, a0, 1\nbne a0, zero, loop\necall")
    assert mnemonics(words) == ["addi", "bne", "ecall"]


def test_li_small_expands_to_addi():
    words = assemble("li a0, 42")
    d = decode(words[0])
    assert d.mnemonic == "addi"
    assert d.fields["imm"] == 42


def test_li_large_expands_to_lui_addi():
    words = assemble("li a0, 0x12345")
    assert mnemonics(words) == ["lui", "addi"]


def test_other_pseudos():
    assert mnemonics(assemble("nop")) == ["addi"]
    assert mnemonics(assemble("mv a0, a1")) == ["addi"]
    assert mnemonics(assemble("ret")) == ["jalr"]
    assert mnemonics(assemble("start: ble a0, a1, start")) == ["bge"]
    assert mnemonics(assemble("start: bgt a0, a1, start")) == ["blt"]


def test_memory_operand_syntax():
    words = assemble("lw a0, 16(sp)\nsw a0, -8(sp)")
    d0, d1 = decode(words[0]), decode(words[1])
    assert d0.fields["imm"] == 16
    assert d1.fields["imm"] == -8


def test_vector_program_assembles():
    words = assemble("""
        vsetvli t0, a0, e32
        vle32.v v1, (a1)
        vlrw.v v2, a2, a3
        vmul.vv v3, v1, v2
        vredsum.vs v4, v3, v0
        vse32.v v3, (a1)
    """)
    assert mnemonics(words) == [
        "vsetvli", "vle32.v", "vlrw.v", "vmul.vv", "vredsum.vs", "vse32.v",
    ]


def test_vector_operand_order_follows_rvv():
    # vsub.vv vd, vs2, vs1 -> vd = vs2 - vs1
    word = assemble("vsub.vv v3, v1, v2")[0]
    d = decode(word)
    assert d.fields == {"vd": 3, "vs2": 1, "vs1": 2, "vm": 1}


def test_unknown_mnemonic_reports_location():
    with pytest.raises(AssemblyError):
        assemble("bogus a0, a1")


def test_unknown_symbol_rejected():
    with pytest.raises(AssemblyError):
        assemble("beq a0, a1, nowhere")


def test_base_address_offsets_labels():
    words = assemble("target: beq zero, zero, target", base_address=0x1000)
    assert decode(words[0]).fields["imm"] == 0
