"""Instruction encode/decode round trips, including property sweeps."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.isa.encoding import decode, encode

reg = st.integers(0, 31)


def roundtrip(mnemonic, **fields):
    d = decode(encode(mnemonic, **fields))
    assert d.mnemonic == mnemonic
    for key, value in fields.items():
        if key in d.fields:
            assert d.fields[key] == value, (mnemonic, key)
    return d


@given(rd=reg, rs1=reg, rs2=reg)
@settings(max_examples=30, deadline=None)
def test_r_type_round_trip(rd, rs1, rs2):
    for m in ("add", "sub", "and", "or", "xor", "sll", "srl", "sra",
              "slt", "sltu", "mul", "div", "rem"):
        roundtrip(m, rd=rd, rs1=rs1, rs2=rs2)


@given(rd=reg, rs1=reg, imm=st.integers(-2048, 2047))
@settings(max_examples=30, deadline=None)
def test_i_type_round_trip(rd, rs1, imm):
    for m in ("addi", "andi", "ori", "xori", "slti"):
        roundtrip(m, rd=rd, rs1=rs1, imm=imm)


@given(rd=reg, rs1=reg, imm=st.integers(0, 63))
@settings(max_examples=20, deadline=None)
def test_shift_immediates(rd, rs1, imm):
    for m in ("slli", "srli", "srai"):
        roundtrip(m, rd=rd, rs1=rs1, imm=imm)


@given(rd=reg, rs1=reg, imm=st.integers(-2048, 2047))
@settings(max_examples=20, deadline=None)
def test_load_round_trip(rd, rs1, imm):
    roundtrip("lw", rd=rd, rs1=rs1, imm=imm)
    roundtrip("ld", rd=rd, rs1=rs1, imm=imm)


@given(rs1=reg, rs2=reg, imm=st.integers(-2048, 2047))
@settings(max_examples=20, deadline=None)
def test_store_round_trip(rs1, rs2, imm):
    roundtrip("sw", rs1=rs1, rs2=rs2, imm=imm)
    roundtrip("sd", rs1=rs1, rs2=rs2, imm=imm)


@given(rs1=reg, rs2=reg, imm=st.integers(-2048, 2046).map(lambda i: i * 2))
@settings(max_examples=20, deadline=None)
def test_branch_round_trip(rs1, rs2, imm):
    for m in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
        roundtrip(m, rs1=rs1, rs2=rs2, imm=imm)


@given(rd=reg, imm=st.integers(-(2**19), 2**19 - 1).map(lambda i: i * 2))
@settings(max_examples=20, deadline=None)
def test_jal_round_trip(rd, imm):
    roundtrip("jal", rd=rd, imm=imm)


def test_lui_auipc_jalr_ecall():
    roundtrip("lui", rd=5, imm=0x12345)
    roundtrip("lui", rd=5, imm=-1)  # sign-extended 20-bit immediate
    roundtrip("auipc", rd=5, imm=100)
    roundtrip("jalr", rd=1, rs1=2, imm=-4)
    assert decode(encode("ecall")).mnemonic == "ecall"


@given(vd=reg, vs1=reg, vs2=reg)
@settings(max_examples=30, deadline=None)
def test_vector_arith_round_trip(vd, vs1, vs2):
    for m in ("vadd.vv", "vsub.vv", "vand.vv", "vor.vv", "vxor.vv",
              "vmseq.vv", "vmslt.vv", "vmsltu.vv", "vmul.vv", "vredsum.vs"):
        roundtrip(m, vd=vd, vs1=vs1, vs2=vs2)


def test_vector_vx_forms():
    roundtrip("vadd.vx", vd=1, vs2=2, rs1=3)
    roundtrip("vmseq.vx", vd=1, vs2=2, rs1=3)
    roundtrip("vmv.v.x", vd=1, rs1=3)


def test_vmerge_vs_vmv_disambiguated_by_vm():
    d = decode(encode("vmerge.vvm", vd=1, vs2=2, vs1=3))
    assert d.mnemonic == "vmerge.vvm"
    assert d.fields["vm"] == 0
    d = decode(encode("vmv.v.v", vd=1, vs1=3))
    assert d.mnemonic == "vmv.v.v"


def test_vector_memory_forms():
    roundtrip("vle32.v", vd=4, rs1=10)
    roundtrip("vse32.v", vs3=4, rs1=10)
    roundtrip("vlse32.v", vd=4, rs1=10, rs2=11)
    roundtrip("vlrw.v", vd=4, rs1=10, rs2=11)


def test_vsetvli():
    d = decode(encode("vsetvli", rd=5, rs1=10, imm=0))
    assert d.mnemonic == "vsetvli"
    assert d.fields["rd"] == 5
    assert d.fields["rs1"] == 10


def test_out_of_range_rejected():
    with pytest.raises(ConfigError):
        encode("addi", rd=1, rs1=2, imm=5000)
    with pytest.raises(ConfigError):
        encode("add", rd=32, rs1=0, rs2=0)
    with pytest.raises(ConfigError):
        encode("beq", rs1=0, rs2=0, imm=3)  # odd offset
    with pytest.raises(ConfigError):
        encode("nonsense")


def test_decode_rejects_garbage():
    with pytest.raises(ConfigError):
        decode(0xFFFFFFFF)
