"""Assembly-level tests for the extended vector instruction set."""

import numpy as np
import pytest

from repro.engine.system import CAPEConfig, CAPESystem
from repro.isa.interpreter import Machine


def run_vector_program(src, cape, **arrays):
    for addr, values in arrays.values():
        cape.memory.write_words(addr, values)
    machine = Machine(src, cape)
    result = machine.run()
    assert result.halted == "ecall"
    return machine


@pytest.fixture
def cape():
    return CAPESystem(CAPEConfig(name="t", num_chains=64))


def test_vmin_vmax_in_assembly(cape, rng):
    a = rng.integers(0, 1000, size=100)
    b = rng.integers(0, 1000, size=100)
    run_vector_program(
        """
            li a0, 100
            li a1, 0x1000
            li a2, 0x2000
            vsetvli t0, a0, e32
            vle32.v v1, (a1)
            vle32.v v2, (a2)
            vminu.vv v3, v1, v2
            vmaxu.vv v4, v1, v2
            ecall
        """,
        cape,
        a=(0x1000, a),
        b=(0x2000, b),
    )
    assert cape.read_vreg(3).tolist() == np.minimum(a, b).tolist()
    assert cape.read_vreg(4).tolist() == np.maximum(a, b).tolist()


def test_shifts_in_assembly(cape, rng):
    a = rng.integers(0, 1 << 20, size=64)
    run_vector_program(
        """
            li a0, 64
            li a1, 0x1000
            vsetvli t0, a0, e32
            vle32.v v1, (a1)
            vsll.vi v2, v1, 4
            vsrl.vi v3, v1, 4
            vsra.vi v4, v1, 4
            ecall
        """,
        cape,
        a=(0x1000, a),
    )
    assert cape.read_vreg(2).tolist() == ((a << 4) & 0xFFFFFFFF).tolist()
    assert cape.read_vreg(3).tolist() == (a >> 4).tolist()
    assert cape.read_vreg(4).tolist() == (a >> 4).tolist()  # positive values


def test_vrsub_in_assembly(cape, rng):
    a = rng.integers(0, 100, size=32)
    run_vector_program(
        """
            li a0, 32
            li a1, 0x1000
            li a3, 1000
            vsetvli t0, a0, e32
            vle32.v v1, (a1)
            vrsub.vx v2, v1, a3
            ecall
        """,
        cape,
        a=(0x1000, a),
    )
    assert cape.read_vreg(2).tolist() == (1000 - a).tolist()


def test_vmsne_in_assembly(cape):
    a = np.array([1, 2, 3, 4])
    b = np.array([1, 9, 3, 9])
    run_vector_program(
        """
            li a0, 4
            li a1, 0x1000
            li a2, 0x2000
            vsetvli t0, a0, e32
            vle32.v v1, (a1)
            vle32.v v2, (a2)
            vmsne.vv v3, v1, v2
            ecall
        """,
        cape,
        a=(0x1000, a),
        b=(0x2000, b),
    )
    assert cape.read_vreg(3).tolist() == [0, 1, 0, 1]


def test_clipping_kernel_composed_from_extended_ops(cape, rng):
    """A realistic kernel: clamp values to [lo, hi] with vmin/vmax."""
    a = rng.integers(0, 2000, size=200)
    lo, hi = 100, 1500
    run_vector_program(
        f"""
            li a0, 200
            li a1, 0x1000
            li a4, {lo}
            li a5, {hi}
            vsetvli t0, a0, e32
            vle32.v v1, (a1)
            vmv.v.x v2, a4
            vmv.v.x v3, a5
            vmaxu.vv v4, v1, v2
            vminu.vv v4, v4, v3
            ecall
        """,
        cape,
        a=(0x1000, a),
    )
    assert cape.read_vreg(4).tolist() == np.clip(a, lo, hi).tolist()
